//! Deterministic fault injection over any [`Transport`].
//!
//! [`FaultTransport`] wraps an inner transport and applies a
//! [`FaultSpec`] to every *gossip* frame crossing it: seeded per-frame
//! drop (each direction), bounded delay/reorder via a release queue
//! drained in the receive poll loop, outbound duplication, partition
//! severing by peer address, forced connection resets, and a wall-clock
//! bandwidth throttle. Control frames (`Ctrl*`) are exempt in both
//! directions so a harness can always scrape, reconfigure, and shut
//! down a daemon no matter how hostile the injected network is.
//!
//! Every decision comes from [`FaultSpec::decide`], a pure counter-mode
//! PRNG keyed by `(seed, direction, src, dst, frame_index)` with the
//! frame index counted per peer per direction. The same spec applied to
//! the same frame sequence therefore makes byte-identical decisions —
//! the whole point: a failing live-cluster run replays exactly from the
//! printed seed. The one deliberate exception is the bandwidth
//! throttle, which meters real elapsed time and so only shapes pacing,
//! never which frames survive.

use crate::frame::{Frame, FrameKind};
use crate::transport::{ConnId, Inbound, Transport, TransportStats};
use sc_core::{FaultDir, FaultSpec};
use sc_sim::Addr;
use std::collections::{HashMap, VecDeque};
use std::time::{Duration, Instant};

/// Sleep granularity of the receive poll loop.
const POLL_SLEEP: Duration = Duration::from_micros(500);
/// Upper bound on one throttle stall, so a tiny `bw=` cannot wedge the
/// daemon's event loop.
const MAX_THROTTLE_STALL: Duration = Duration::from_millis(100);

/// Counters for injected faults, merged into [`TransportStats`].
#[derive(Clone, Copy, Debug, Default)]
struct Injected {
    dropped: u64,
    delayed: u64,
    duplicated: u64,
    resets: u64,
    throttled: u64,
}

/// A fault-injecting [`Transport`] wrapper. See the module docs.
pub struct FaultTransport<T: Transport> {
    inner: T,
    spec: FaultSpec,
    /// Outbound faultable-frame counters, per destination.
    out_index: HashMap<Addr, u64>,
    /// Inbound faultable-frame counters, per source.
    in_index: HashMap<Addr, u64>,
    /// Delayed frames awaiting release: `(release_tick, frame)`.
    held: VecDeque<(u64, Inbound)>,
    /// Receive poll-pass counter; delayed frames mature against it.
    tick: u64,
    injected: Injected,
    /// Token bucket for the bandwidth throttle.
    bucket: f64,
    bucket_at: Instant,
}

fn is_control(kind: FrameKind) -> bool {
    matches!(
        kind,
        FrameKind::CtrlStatus
            | FrameKind::CtrlStatusReply
            | FrameKind::CtrlShutdown
            | FrameKind::CtrlFault
            | FrameKind::CtrlFaultReply
    )
}

impl<T: Transport> FaultTransport<T> {
    /// Wraps `inner` under `spec` (a no-op spec is exact pass-through).
    pub fn new(inner: T, spec: FaultSpec) -> FaultTransport<T> {
        FaultTransport {
            inner,
            spec,
            out_index: HashMap::new(),
            in_index: HashMap::new(),
            held: VecDeque::new(),
            tick: 0,
            injected: Injected::default(),
            bucket: 0.0,
            bucket_at: Instant::now(),
        }
    }

    /// The active spec.
    pub fn spec(&self) -> &FaultSpec {
        &self.spec
    }

    /// Replaces the spec (daemons do this at cycle boundaries). Frames
    /// already held by the old spec's delays still mature normally;
    /// frame indices keep counting, so decisions stay a pure function
    /// of the spec sequence and the frame sequence.
    pub fn set_spec(&mut self, spec: FaultSpec) {
        self.spec = spec;
    }

    /// The wrapped transport.
    pub fn inner(&self) -> &T {
        &self.inner
    }

    /// Blocks until the token bucket covers `bytes`, metering
    /// `bandwidth_bytes_per_sec` (stall capped so the event loop cannot
    /// wedge).
    fn throttle(&mut self, bytes: usize) {
        let bw = self.spec.bandwidth_bytes_per_sec;
        if bw == 0 {
            return;
        }
        let bw = bw as f64;
        let now = Instant::now();
        self.bucket += now.duration_since(self.bucket_at).as_secs_f64() * bw;
        self.bucket_at = now;
        // Burst cap: one second of budget.
        self.bucket = self.bucket.min(bw);
        let need = bytes as f64;
        if self.bucket < need {
            let wait = Duration::from_secs_f64((need - self.bucket) / bw).min(MAX_THROTTLE_STALL);
            std::thread::sleep(wait);
            self.bucket += wait.as_secs_f64() * bw;
            self.bucket_at = Instant::now();
            self.injected.throttled += 1;
        }
        self.bucket -= need;
    }

    /// Applies inbound faults to one frame: `None` if dropped or held
    /// for later release.
    fn admit(&mut self, ib: Inbound) -> Option<Inbound> {
        if is_control(ib.frame.kind) {
            return Some(ib);
        }
        let from = ib.frame.from;
        if self.spec.severs(from) {
            self.injected.dropped += 1;
            return None;
        }
        let idx = self.in_index.entry(from).or_insert(0);
        let i = *idx;
        *idx += 1;
        let d = self
            .spec
            .decide(FaultDir::Inbound, from, self.inner.local_addr(), i);
        if d.drop {
            self.injected.dropped += 1;
            return None;
        }
        if d.delay_polls > 0 {
            self.injected.delayed += 1;
            self.held.push_back((self.tick + d.delay_polls as u64, ib));
            return None;
        }
        Some(ib)
    }

    /// Removes and returns the first held frame whose release tick has
    /// matured.
    fn pop_ready(&mut self) -> Option<Inbound> {
        let pos = self.held.iter().position(|(t, _)| *t <= self.tick)?;
        self.held.remove(pos).map(|(_, ib)| ib)
    }
}

impl<T: Transport> Transport for FaultTransport<T> {
    fn local_addr(&self) -> Addr {
        self.inner.local_addr()
    }

    fn send_to(&mut self, to: Addr, frame: &Frame) -> bool {
        if self.spec.is_noop() || is_control(frame.kind) {
            return self.inner.send_to(to, frame);
        }
        if self.spec.severs(to) {
            // Severed peers swallow frames silently: the sender sees a
            // healthy write, exactly like a mid-path partition.
            self.injected.dropped += 1;
            return true;
        }
        let idx = self.out_index.entry(to).or_insert(0);
        let i = *idx;
        *idx += 1;
        let d = self
            .spec
            .decide(FaultDir::Outbound, self.inner.local_addr(), to, i);
        if d.reset {
            self.injected.resets += 1;
            self.inner.reset(to);
        }
        if d.drop {
            self.injected.dropped += 1;
            return true;
        }
        let wire_len = crate::frame::FRAME_HEADER_BYTES + frame.payload.len();
        self.throttle(wire_len);
        let sent = self.inner.send_to(to, frame);
        if sent && d.duplicate {
            self.injected.duplicated += 1;
            self.throttle(wire_len);
            let _ = self.inner.send_to(to, frame);
        }
        sent
    }

    fn respond(&mut self, conn: ConnId, frame: &Frame) -> bool {
        // Replies ride the connection a request arrived on; the
        // initiator's own inbound faults already cover this direction,
        // so responses pass through untouched.
        self.inner.respond(conn, frame)
    }

    fn recv(&mut self, timeout: Duration) -> Option<Inbound> {
        if self.spec.is_noop() && self.held.is_empty() {
            return self.inner.recv(timeout);
        }
        let deadline = Instant::now() + timeout;
        loop {
            // One poll pass: matured held frames first (they are older
            // than anything still in the socket), then drain the inner
            // transport, admitting each frame through the fault filter.
            self.tick += 1;
            if let Some(ib) = self.pop_ready() {
                return Some(ib);
            }
            while let Some(ib) = self.inner.recv(Duration::ZERO) {
                if let Some(ib) = self.admit(ib) {
                    return Some(ib);
                }
            }
            if Instant::now() >= deadline {
                return None;
            }
            std::thread::sleep(POLL_SLEEP);
        }
    }

    fn stats(&self) -> TransportStats {
        let mut s = self.inner.stats();
        s.frames_dropped_injected = self.injected.dropped;
        s.frames_delayed = self.injected.delayed;
        s.frames_duplicated = self.injected.duplicated;
        s.resets_injected = self.injected.resets;
        s.frames_throttled = self.injected.throttled;
        s
    }

    fn reset(&mut self, peer: Addr) {
        self.inner.reset(peer);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::TcpTransport;
    use std::net::TcpListener;

    fn bind_any() -> TcpTransport {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let port = listener.local_addr().unwrap().port();
        drop(listener);
        TcpTransport::bind(port as Addr, Duration::from_millis(200), 1 << 20).unwrap()
    }

    fn oneway(from: Addr, body: &[u8]) -> Frame {
        Frame::new(FrameKind::Oneway, from, body.to_vec())
    }

    #[test]
    fn noop_spec_is_pass_through() {
        let mut a = FaultTransport::new(bind_any(), FaultSpec::default());
        let mut b = FaultTransport::new(bind_any(), FaultSpec::default());
        let f = oneway(a.local_addr(), b"hello");
        assert!(a.send_to(b.local_addr(), &f));
        let got = b.recv(Duration::from_millis(500)).expect("delivered");
        assert_eq!(got.frame, f);
        let s = b.stats();
        assert_eq!(s.frames_dropped_injected, 0);
        assert_eq!(s.frames_delayed, 0);
        assert_eq!(s.frames_in, 1);
    }

    #[test]
    fn full_drop_loses_gossip_but_not_control() {
        let spec = FaultSpec::parse("seed=1,drop=1.0").unwrap();
        let mut a = FaultTransport::new(bind_any(), spec.clone());
        let mut b = FaultTransport::new(bind_any(), spec);
        let f = oneway(a.local_addr(), b"doomed");
        assert!(a.send_to(b.local_addr(), &f), "drop is silent");
        assert!(b.recv(Duration::from_millis(100)).is_none());
        assert_eq!(a.stats().frames_dropped_injected, 1);
        // Control frames are exempt even at drop=1.
        let c = Frame::new(FrameKind::CtrlStatus, 0, vec![]);
        assert!(a.send_to(b.local_addr(), &c));
        let got = b.recv(Duration::from_millis(500)).expect("control exempt");
        assert_eq!(got.frame.kind, FrameKind::CtrlStatus);
    }

    #[test]
    fn severed_peers_are_cut_both_ways() {
        let mut a = FaultTransport::new(bind_any(), FaultSpec::default());
        let b_inner = bind_any();
        let spec = FaultSpec::parse(&format!("sever={}", a.local_addr())).unwrap();
        let mut b = FaultTransport::new(b_inner, spec);
        // a -> b: arrives at b's socket but b's inbound filter eats it.
        assert!(a.send_to(b.local_addr(), &oneway(a.local_addr(), b"in")));
        assert!(b.recv(Duration::from_millis(100)).is_none());
        assert_eq!(b.stats().frames_dropped_injected, 1);
        // b -> a: swallowed before the socket.
        assert!(b.send_to(a.local_addr(), &oneway(b.local_addr(), b"out")));
        assert!(a.recv(Duration::from_millis(100)).is_none());
        assert_eq!(b.stats().frames_dropped_injected, 2);
        // Healing (noop spec) restores the link in both directions.
        b.set_spec(FaultSpec::default());
        assert!(a.send_to(b.local_addr(), &oneway(a.local_addr(), b"in2")));
        assert!(b.recv(Duration::from_millis(500)).is_some());
        assert!(b.send_to(a.local_addr(), &oneway(b.local_addr(), b"out2")));
        assert!(a.recv(Duration::from_millis(500)).is_some());
    }

    #[test]
    fn delays_hold_then_release_within_the_bound() {
        let spec = FaultSpec::parse("seed=2,delay=1.0:3").unwrap();
        let mut a = FaultTransport::new(bind_any(), FaultSpec::default());
        let mut b = FaultTransport::new(bind_any(), spec);
        for i in 0..5u8 {
            assert!(a.send_to(b.local_addr(), &oneway(a.local_addr(), &[i])));
        }
        // All five frames must still arrive — delayed, never lost.
        let mut got = Vec::new();
        let deadline = Instant::now() + Duration::from_secs(2);
        while got.len() < 5 && Instant::now() < deadline {
            if let Some(ib) = b.recv(Duration::from_millis(50)) {
                got.push(ib.frame.payload[0]);
            }
        }
        assert_eq!(got.len(), 5, "delayed frames were lost");
        let mut sorted = got.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3, 4]);
        assert_eq!(b.stats().frames_delayed, 5);
        assert_eq!(b.stats().frames_dropped_injected, 0);
    }

    #[test]
    fn duplication_sends_twice() {
        let spec = FaultSpec::parse("seed=3,dup=1.0").unwrap();
        let mut a = FaultTransport::new(bind_any(), spec);
        let mut b = FaultTransport::new(bind_any(), FaultSpec::default());
        assert!(a.send_to(b.local_addr(), &oneway(a.local_addr(), b"twin")));
        assert_eq!(a.stats().frames_duplicated, 1);
        assert!(b.recv(Duration::from_millis(500)).is_some());
        assert!(b.recv(Duration::from_millis(500)).is_some());
        assert_eq!(b.stats().frames_in, 2);
    }

    #[test]
    fn resets_tear_down_the_cached_dial() {
        let spec = FaultSpec::parse("seed=4,reset=1.0").unwrap();
        let mut a = FaultTransport::new(bind_any(), spec);
        let mut b = FaultTransport::new(bind_any(), FaultSpec::default());
        assert!(a.send_to(b.local_addr(), &oneway(a.local_addr(), b"x")));
        assert!(a.send_to(b.local_addr(), &oneway(a.local_addr(), b"y")));
        assert_eq!(a.stats().resets_injected, 2);
        // Both frames still arrive — resets force redials, not loss.
        assert!(b.recv(Duration::from_millis(500)).is_some());
        assert!(b.recv(Duration::from_millis(500)).is_some());
        // Each send re-dialed from scratch.
        assert!(a.stats().peak_conns >= 1);
        assert!(b.stats().peak_conns >= 2);
    }
}
