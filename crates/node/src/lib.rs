//! # sc-node — a runnable SecureCyclon daemon
//!
//! Graduates the protocol from in-memory simulation to real sockets: a
//! single-threaded event-loop daemon over non-blocking `std::net`
//! (poll-style readiness; the build environment has no registry access,
//! so no tokio), running [`sc_core::SecureCyclonNode`] behind a small
//! [`Transport`](transport::Transport) trait.
//!
//! * [`frame`] — length-prefixed framing over `wire::encode_message` /
//!   `wire::decode_message`, with per-connection read budgets.
//! * [`transport`] — the `Transport` trait and its TCP implementation
//!   with connect/read timeouts and deterministic retry/backoff.
//! * [`fault`] — a deterministic fault-injecting `Transport` wrapper
//!   (seeded drop/delay/duplication, partitions, resets, throttling).
//! * [`control`] — the control-socket status protocol test harnesses
//!   scrape live state through.
//! * [`daemon`] — the event loop: clock-driven gossip cycles, blocking
//!   RPC turns, the §V-A bootstrap/sponsorship join handshake.
//! * [`config`] — daemon configuration and the flag parser the `sc-node`
//!   binary uses.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod control;
pub mod daemon;
pub mod fault;
pub mod frame;
pub mod transport;

pub use config::NodeConfig;
pub use control::{ControlClient, StatusReport};
pub use daemon::Daemon;
pub use fault::FaultTransport;
pub use frame::{Frame, FrameError, FrameKind, FRAME_HEADER_BYTES};
pub use transport::{TcpTransport, Transport};
