//! The control-socket protocol: how a harness scrapes a live daemon.
//!
//! A control client connects to the daemon's one TCP port like any peer,
//! but speaks [`FrameKind::CtrlStatus`] / [`FrameKind::CtrlStatusReply`]
//! frames. The reply payload is a [`StatusReport`]: enough of the node's
//! protocol state (view descriptors with NS flags, reserve, blacklist,
//! counters) for the invariant oracles in `sc-testkit` to run against
//! live processes exactly as they run against simulated ones.

use crate::frame::{Frame, FrameKind, FrameReader, FRAME_HEADER_BYTES};
use crate::transport::TransportStats;
use sc_core::wire::{self, WireError, WireLimits};
use sc_core::{SecureDescriptor, SecureStats};
use sc_crypto::{PublicKey, PUBLIC_KEY_LEN};
use sc_sim::Addr;
use std::io::{ErrorKind, Read, Write};
use std::net::{Ipv4Addr, SocketAddr, SocketAddrV4, TcpStream};
use std::time::{Duration, Instant};

/// A live daemon's scraped state.
#[derive(Clone, Debug)]
pub struct StatusReport {
    /// Protocol address.
    pub addr: Addr,
    /// Node identity (public key).
    pub id: PublicKey,
    /// The daemon's current cycle number.
    pub cycle: u64,
    /// Whether the node holds a view (bootstrap or sponsorship done).
    pub joined: bool,
    /// Gossip cycles the daemon has fired.
    pub cycles_run: u64,
    /// View entries with their non-swappable flags.
    pub view: Vec<(SecureDescriptor, bool)>,
    /// Owned descriptors parked in the reserve.
    pub reserve: Vec<SecureDescriptor>,
    /// Blacklisted culprits.
    pub blacklist: Vec<PublicKey>,
    /// Redemption-cache entry count (for the cache-bound oracle).
    pub redemptions: usize,
    /// Protocol counters.
    pub stats: SecureStats,
    /// Transport counters.
    pub transport: TransportStats,
    /// RPC request frames retransmitted inside their deadline (the same
    /// encoded frame, never a re-emission — §IV-B forbids a second
    /// descriptor per period).
    pub retransmits: u64,
    /// Turn deadlines that passed without firing (daemon fell behind the
    /// shared clock or was partitioned off it).
    pub turns_skipped: u64,
}

fn put_u16(out: &mut Vec<u8>, v: usize) {
    out.extend_from_slice(&(v as u16).to_be_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_be_bytes());
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.pos + n > self.buf.len() {
            return Err(WireError::UnexpectedEnd);
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<usize, WireError> {
        let b = self.take(2)?;
        Ok(u16::from_be_bytes([b[0], b[1]]) as usize)
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        let b = self.take(4)?;
        Ok(u32::from_be_bytes(b.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        let b = self.take(8)?;
        Ok(u64::from_be_bytes(b.try_into().unwrap()))
    }

    fn key(&mut self) -> Result<PublicKey, WireError> {
        let b = self.take(PUBLIC_KEY_LEN)?;
        let mut a = [0u8; PUBLIC_KEY_LEN];
        a.copy_from_slice(b);
        PublicKey::from_bytes(a).ok_or(WireError::BadPublicKey)
    }
}

/// The [`SecureStats`] counters in wire order. New counters append at
/// the end so older readers (which index with a default of 0) keep
/// decoding newer reports.
fn stats_to_array(s: &SecureStats) -> [u64; 23] {
    [
        s.initiated,
        s.completed,
        s.timeouts,
        s.answered,
        s.refused,
        s.idle_cycles,
        s.transfers_sent,
        s.transfers_received,
        s.transfers_rejected,
        s.dup_drops,
        s.samples_processed,
        s.invalid_descriptors,
        s.proofs_generated_cloning,
        s.proofs_generated_frequency,
        s.proofs_received,
        s.proofs_duplicate,
        s.proofs_invalid,
        s.ns_backfills,
        s.ns_redemptions_accepted,
        s.bytes_sent,
        s.bytes_received,
        s.rejoin_pings,
        s.rejoin_grants,
    ]
}

/// The [`TransportStats`] counters in wire order — same append-only
/// discipline as [`stats_to_array`].
fn transport_to_array(t: &TransportStats) -> [u64; 13] {
    [
        t.frames_in,
        t.frames_out,
        t.bytes_in,
        t.bytes_out,
        t.active_conns,
        t.peak_conns,
        t.connect_failures,
        t.poisoned_conns,
        t.frames_dropped_injected,
        t.frames_delayed,
        t.frames_duplicated,
        t.resets_injected,
        t.frames_throttled,
    ]
}

fn transport_from_array(a: &[u64]) -> TransportStats {
    let g = |i: usize| a.get(i).copied().unwrap_or(0);
    TransportStats {
        frames_in: g(0),
        frames_out: g(1),
        bytes_in: g(2),
        bytes_out: g(3),
        active_conns: g(4),
        peak_conns: g(5),
        connect_failures: g(6),
        poisoned_conns: g(7),
        frames_dropped_injected: g(8),
        frames_delayed: g(9),
        frames_duplicated: g(10),
        resets_injected: g(11),
        frames_throttled: g(12),
    }
}

fn stats_from_array(a: &[u64]) -> SecureStats {
    let g = |i: usize| a.get(i).copied().unwrap_or(0);
    SecureStats {
        initiated: g(0),
        completed: g(1),
        timeouts: g(2),
        answered: g(3),
        refused: g(4),
        idle_cycles: g(5),
        transfers_sent: g(6),
        transfers_received: g(7),
        transfers_rejected: g(8),
        dup_drops: g(9),
        samples_processed: g(10),
        invalid_descriptors: g(11),
        proofs_generated_cloning: g(12),
        proofs_generated_frequency: g(13),
        proofs_received: g(14),
        proofs_duplicate: g(15),
        proofs_invalid: g(16),
        ns_backfills: g(17),
        ns_redemptions_accepted: g(18),
        bytes_sent: g(19),
        bytes_received: g(20),
        rejoin_pings: g(21),
        rejoin_grants: g(22),
    }
}

impl StatusReport {
    /// Serializes the report for a `CtrlStatusReply` payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(256);
        out.extend_from_slice(&self.addr.to_be_bytes());
        out.extend_from_slice(self.id.as_bytes());
        put_u64(&mut out, self.cycle);
        out.push(self.joined as u8);
        put_u64(&mut out, self.cycles_run);
        let stats = stats_to_array(&self.stats);
        put_u16(&mut out, stats.len());
        for v in stats {
            put_u64(&mut out, v);
        }
        let transport = transport_to_array(&self.transport);
        put_u16(&mut out, transport.len());
        for v in transport {
            put_u64(&mut out, v);
        }
        put_u16(&mut out, self.view.len());
        for (desc, ns) in &self.view {
            out.push(*ns as u8);
            wire::encode_descriptor(desc, &mut out);
        }
        put_u16(&mut out, self.reserve.len());
        for desc in &self.reserve {
            wire::encode_descriptor(desc, &mut out);
        }
        put_u16(&mut out, self.blacklist.len());
        for id in &self.blacklist {
            out.extend_from_slice(id.as_bytes());
        }
        // Trailing extensions (older decoders treat them as optional,
        // and everything after a tear decodes as zero).
        put_u16(&mut out, self.redemptions);
        put_u64(&mut out, self.retransmits);
        put_u64(&mut out, self.turns_skipped);
        out
    }

    /// Deserializes a report.
    ///
    /// # Errors
    ///
    /// Any [`WireError`] on malformed payloads.
    pub fn decode(buf: &[u8], limits: &WireLimits) -> Result<StatusReport, WireError> {
        let mut c = Cursor { buf, pos: 0 };
        let addr = c.u32()?;
        let id = c.key()?;
        let cycle = c.u64()?;
        let joined = c.u8()? != 0;
        let cycles_run = c.u64()?;
        let n_stats = c.u16()?;
        if n_stats > 64 {
            return Err(WireError::ListTooLong(n_stats as u16));
        }
        let mut raw = Vec::with_capacity(n_stats);
        for _ in 0..n_stats {
            raw.push(c.u64()?);
        }
        let stats = stats_from_array(&raw);
        let n_transport = c.u16()?;
        if n_transport > 64 {
            return Err(WireError::ListTooLong(n_transport as u16));
        }
        let mut raw_t = Vec::with_capacity(n_transport);
        for _ in 0..n_transport {
            raw_t.push(c.u64()?);
        }
        let transport = transport_from_array(&raw_t);
        let n_view = c.u16()?;
        if n_view > limits.max_list_len {
            return Err(WireError::ListTooLong(n_view as u16));
        }
        let mut view = Vec::with_capacity(n_view.min(1024));
        for _ in 0..n_view {
            let ns = c.u8()? != 0;
            let (desc, used) = wire::decode_descriptor_with(&buf[c.pos..], limits)?;
            c.pos += used;
            view.push((desc, ns));
        }
        let n_res = c.u16()?;
        if n_res > limits.max_list_len {
            return Err(WireError::ListTooLong(n_res as u16));
        }
        let mut reserve = Vec::with_capacity(n_res.min(1024));
        for _ in 0..n_res {
            let (desc, used) = wire::decode_descriptor_with(&buf[c.pos..], limits)?;
            c.pos += used;
            reserve.push(desc);
        }
        let n_bl = c.u16()?;
        if n_bl > limits.max_list_len {
            return Err(WireError::ListTooLong(n_bl as u16));
        }
        let mut blacklist = Vec::with_capacity(n_bl.min(1024));
        for _ in 0..n_bl {
            blacklist.push(c.key()?);
        }
        // Optional trailing extensions from newer daemons.
        let redemptions = c.u16().unwrap_or(0);
        let retransmits = c.u64().unwrap_or(0);
        let turns_skipped = c.u64().unwrap_or(0);
        Ok(StatusReport {
            addr,
            id,
            cycle,
            joined,
            cycles_run,
            view,
            reserve,
            blacklist,
            redemptions,
            stats,
            transport,
            retransmits,
            turns_skipped,
        })
    }
}

/// A blocking client for the daemon's control channel.
pub struct ControlClient {
    stream: TcpStream,
    reader: FrameReader,
    addr: Addr,
}

impl ControlClient {
    /// Connects to the daemon at loopback `addr`.
    ///
    /// # Errors
    ///
    /// Propagates connect failures.
    pub fn connect(addr: Addr, timeout: Duration) -> std::io::Result<ControlClient> {
        let sock = SocketAddr::V4(SocketAddrV4::new(Ipv4Addr::LOCALHOST, addr as u16));
        let stream = TcpStream::connect_timeout(&sock, timeout)?;
        stream.set_nodelay(true)?;
        stream.set_nonblocking(true)?;
        Ok(ControlClient {
            stream,
            reader: FrameReader::new(64 << 20),
            addr,
        })
    }

    /// Sends one frame and waits for a reply of `want` kind.
    fn round(&mut self, send: Frame, want: FrameKind, timeout: Duration) -> std::io::Result<Frame> {
        let bytes = send.encode();
        let deadline = Instant::now() + timeout;
        let mut off = 0;
        while off < bytes.len() {
            match self.stream.write(&bytes[off..]) {
                Ok(n) => off += n,
                Err(e)
                    if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::Interrupted =>
                {
                    if Instant::now() >= deadline {
                        return Err(ErrorKind::TimedOut.into());
                    }
                    std::thread::sleep(Duration::from_micros(500));
                }
                Err(e) => return Err(e),
            }
        }
        let mut chunk = [0u8; 4096];
        loop {
            match self.reader.next_frame() {
                Ok(Some(f)) if f.kind == want => return Ok(f),
                Ok(Some(_)) => continue,
                Ok(None) => {}
                Err(_) => return Err(ErrorKind::InvalidData.into()),
            }
            if Instant::now() >= deadline {
                return Err(ErrorKind::TimedOut.into());
            }
            match self.stream.read(&mut chunk) {
                Ok(0) => return Err(ErrorKind::UnexpectedEof.into()),
                Ok(n) => self.reader.feed(&chunk[..n]),
                Err(e)
                    if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::Interrupted =>
                {
                    std::thread::sleep(Duration::from_micros(500));
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Scrapes the daemon's status.
    ///
    /// # Errors
    ///
    /// IO failures, timeouts, or an undecodable report.
    pub fn status(&mut self, timeout: Duration) -> std::io::Result<StatusReport> {
        let req = Frame::new(FrameKind::CtrlStatus, 0, Vec::new());
        let reply = self.round(req, FrameKind::CtrlStatusReply, timeout)?;
        StatusReport::decode(&reply.payload, &WireLimits::DEFAULT)
            .map_err(|_| ErrorKind::InvalidData.into())
    }

    /// Installs a fault-injection spec on the daemon. The daemon
    /// acknowledges immediately but applies the spec at its next cycle
    /// boundary, so every cycle runs under exactly one spec.
    ///
    /// # Errors
    ///
    /// IO failures or timeout waiting for the acknowledgement.
    pub fn set_fault(
        &mut self,
        spec: &sc_core::FaultSpec,
        timeout: Duration,
    ) -> std::io::Result<()> {
        let mut payload = Vec::with_capacity(64);
        spec.encode(&mut payload);
        let req = Frame::new(FrameKind::CtrlFault, 0, payload);
        self.round(req, FrameKind::CtrlFaultReply, timeout)?;
        Ok(())
    }

    /// Asks the daemon to exit its run loop. Fire-and-forget.
    ///
    /// # Errors
    ///
    /// IO failures while writing the frame.
    pub fn shutdown(&mut self) -> std::io::Result<()> {
        let bytes = Frame::new(FrameKind::CtrlShutdown, 0, Vec::new()).encode();
        let deadline = Instant::now() + Duration::from_millis(500);
        let mut off = 0;
        while off < bytes.len() {
            match self.stream.write(&bytes[off..]) {
                Ok(n) => off += n,
                Err(e)
                    if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::Interrupted =>
                {
                    if Instant::now() >= deadline {
                        return Err(ErrorKind::TimedOut.into());
                    }
                    std::thread::sleep(Duration::from_micros(500));
                }
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }

    /// The daemon address this client targets.
    pub fn target(&self) -> Addr {
        self.addr
    }
}

// Suppress an unused-constant lint path: header size is part of the
// public framing contract re-exported at the crate root.
const _: usize = FRAME_HEADER_BYTES;

#[cfg(test)]
mod tests {
    use super::*;
    use sc_core::Timestamp;
    use sc_crypto::{Keypair, Scheme};

    #[test]
    fn status_report_roundtrips() {
        let kp = Keypair::from_seed(Scheme::KeyedHash, [9; 32]);
        let peer = Keypair::from_seed(Scheme::KeyedHash, [8; 32]);
        let owned = SecureDescriptor::create(&peer, 7, Timestamp(12))
            .transfer(&peer, kp.public())
            .unwrap();
        let report = StatusReport {
            addr: 41017,
            id: kp.public(),
            cycle: 230,
            joined: true,
            cycles_run: 222,
            view: vec![(owned.clone(), true), (owned.clone(), false)],
            reserve: vec![owned],
            blacklist: vec![peer.public()],
            redemptions: 5,
            stats: SecureStats {
                initiated: 230,
                completed: 200,
                bytes_sent: 123_456,
                ..SecureStats::default()
            },
            transport: TransportStats {
                frames_in: 9000,
                peak_conns: 37,
                frames_dropped_injected: 41,
                frames_delayed: 11,
                ..TransportStats::default()
            },
            retransmits: 17,
            turns_skipped: 3,
        };
        let bytes = report.encode();
        let back = StatusReport::decode(&bytes, &WireLimits::DEFAULT).unwrap();
        assert_eq!(back.addr, report.addr);
        assert_eq!(back.id, report.id);
        assert_eq!(back.cycle, 230);
        assert!(back.joined);
        assert_eq!(back.view.len(), 2);
        assert!(back.view[0].1);
        assert!(!back.view[1].1);
        assert_eq!(back.view[0].0, report.view[0].0);
        assert_eq!(back.reserve.len(), 1);
        assert_eq!(back.blacklist, vec![peer.public()]);
        assert_eq!(back.redemptions, 5);
        assert_eq!(back.stats, report.stats);
        assert_eq!(back.transport, report.transport);
        assert_eq!(back.retransmits, 17);
        assert_eq!(back.turns_skipped, 3);
    }

    #[test]
    fn truncated_reports_error_cleanly() {
        let kp = Keypair::from_seed(Scheme::KeyedHash, [9; 32]);
        let report = StatusReport {
            addr: 1,
            id: kp.public(),
            cycle: 0,
            joined: false,
            cycles_run: 0,
            view: vec![],
            reserve: vec![],
            blacklist: vec![],
            redemptions: 0,
            stats: SecureStats::default(),
            transport: TransportStats::default(),
            retransmits: 9,
            turns_skipped: 9,
        };
        let bytes = report.encode();
        // The last 18 bytes are the optional extensions (redemptions u16,
        // retransmits u64, turns_skipped u64); cuts inside the required
        // prefix must error.
        let tail = 2 + 8 + 8;
        for cut in [0, 10, bytes.len() - tail - 1] {
            assert!(StatusReport::decode(&bytes[..cut], &WireLimits::DEFAULT).is_err());
        }
        // A torn optional tail still decodes (as an older daemon's
        // report, with the torn counters zeroed).
        let old = StatusReport::decode(&bytes[..bytes.len() - tail], &WireLimits::DEFAULT).unwrap();
        assert_eq!(old.redemptions, 0);
        assert_eq!(old.retransmits, 0);
        let torn = StatusReport::decode(&bytes[..bytes.len() - 8], &WireLimits::DEFAULT).unwrap();
        assert_eq!(torn.retransmits, 9);
        assert_eq!(torn.turns_skipped, 0);
    }
}
