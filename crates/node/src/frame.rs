//! Length-prefixed framing for the daemon's TCP streams.
//!
//! Every frame is `magic (4) | kind (1) | req_id (4) | from (4) |
//! len (4) | payload (len)`, all integers big-endian. Gossip frames carry
//! a [`sc_core::wire::encode_message`] payload; join and control frames
//! carry the small ad-hoc payloads defined in [`crate::control`] and
//! [`crate::daemon`].
//!
//! Decoding is incremental and hostile-input safe: the payload length is
//! validated against the configured cap **before** any buffer is grown,
//! so a 4-byte length prefix can never force a large allocation — the
//! same discipline [`sc_core::wire::WireLimits`] applies one layer down.

use sc_sim::Addr;

/// Frame magic: `"SCn1"`.
pub const FRAME_MAGIC: u32 = 0x5343_6e31;

/// Fixed header size in bytes.
pub const FRAME_HEADER_BYTES: usize = 17;

/// Default cap on one frame's payload.
pub const DEFAULT_MAX_FRAME_BYTES: usize = 1 << 20;

/// The role of a frame on the wire.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FrameKind {
    /// A gossip RPC request (`SecureMsg`); expects a [`FrameKind::Reply`]
    /// with the same `req_id` on the same connection.
    Request,
    /// The response to a [`FrameKind::Request`].
    Reply,
    /// A fire-and-forget gossip message (proof floods).
    Oneway,
    /// §V-A join handshake: a joiner asking to be sponsored.
    JoinRequest,
    /// §V-A join handshake: the sponsor's grant (descriptor + proofs).
    JoinGrant,
    /// Control channel: status scrape request (empty payload).
    CtrlStatus,
    /// Control channel: encoded [`crate::StatusReport`].
    CtrlStatusReply,
    /// Control channel: ask the daemon to exit its run loop.
    CtrlShutdown,
    /// Control channel: install an encoded [`sc_core::FaultSpec`] at the
    /// next cycle boundary.
    CtrlFault,
    /// Control channel: acknowledges a [`FrameKind::CtrlFault`].
    CtrlFaultReply,
}

impl FrameKind {
    fn tag(self) -> u8 {
        match self {
            FrameKind::Request => 1,
            FrameKind::Reply => 2,
            FrameKind::Oneway => 3,
            FrameKind::JoinRequest => 4,
            FrameKind::JoinGrant => 5,
            FrameKind::CtrlStatus => 6,
            FrameKind::CtrlStatusReply => 7,
            FrameKind::CtrlShutdown => 8,
            FrameKind::CtrlFault => 9,
            FrameKind::CtrlFaultReply => 10,
        }
    }

    fn from_tag(tag: u8) -> Option<FrameKind> {
        match tag {
            1 => Some(FrameKind::Request),
            2 => Some(FrameKind::Reply),
            3 => Some(FrameKind::Oneway),
            4 => Some(FrameKind::JoinRequest),
            5 => Some(FrameKind::JoinGrant),
            6 => Some(FrameKind::CtrlStatus),
            7 => Some(FrameKind::CtrlStatusReply),
            8 => Some(FrameKind::CtrlShutdown),
            9 => Some(FrameKind::CtrlFault),
            10 => Some(FrameKind::CtrlFaultReply),
            _ => None,
        }
    }
}

/// One framed unit on a daemon connection.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Frame {
    /// What the payload is.
    pub kind: FrameKind,
    /// RPC correlation id (0 for non-RPC frames).
    pub req_id: u32,
    /// The sender's protocol address (0 for control clients).
    pub from: Addr,
    /// Kind-specific payload bytes.
    pub payload: Vec<u8>,
}

impl Frame {
    /// Builds a frame with no correlation id.
    pub fn new(kind: FrameKind, from: Addr, payload: Vec<u8>) -> Frame {
        Frame {
            kind,
            req_id: 0,
            from,
            payload,
        }
    }

    /// Serializes the frame.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(FRAME_HEADER_BYTES + self.payload.len());
        out.extend_from_slice(&FRAME_MAGIC.to_be_bytes());
        out.push(self.kind.tag());
        out.extend_from_slice(&self.req_id.to_be_bytes());
        out.extend_from_slice(&self.from.to_be_bytes());
        out.extend_from_slice(&(self.payload.len() as u32).to_be_bytes());
        out.extend_from_slice(&self.payload);
        out
    }
}

/// Errors that poison a connection's frame stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FrameError {
    /// The stream did not start with [`FRAME_MAGIC`].
    BadMagic(u32),
    /// Unknown [`FrameKind`] tag.
    BadKind(u8),
    /// The declared payload length exceeds the configured cap.
    TooLarge {
        /// Declared payload length.
        len: usize,
        /// The cap it exceeded.
        max: usize,
    },
}

impl core::fmt::Display for FrameError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            FrameError::BadMagic(m) => write!(f, "bad frame magic {m:#010x}"),
            FrameError::BadKind(t) => write!(f, "unknown frame kind tag {t}"),
            FrameError::TooLarge { len, max } => {
                write!(
                    f,
                    "declared payload of {len} bytes exceeds the {max}-byte cap"
                )
            }
        }
    }
}

impl std::error::Error for FrameError {}

/// Incremental frame decoder: feed raw stream bytes in, pop whole frames
/// out. One decoder per connection.
#[derive(Debug)]
pub struct FrameReader {
    buf: Vec<u8>,
    max_frame_bytes: usize,
    poisoned: bool,
}

impl FrameReader {
    /// Creates a decoder enforcing the given payload cap.
    pub fn new(max_frame_bytes: usize) -> FrameReader {
        FrameReader {
            buf: Vec::new(),
            max_frame_bytes,
            poisoned: false,
        }
    }

    /// Appends raw bytes read from the stream.
    ///
    /// The internal buffer stays bounded: callers feed at most their read
    /// budget per poll, and [`FrameReader::next_frame`] drains completed
    /// frames (or poisons the stream) before more input arrives.
    pub fn feed(&mut self, bytes: &[u8]) {
        if !self.poisoned {
            self.buf.extend_from_slice(bytes);
        }
    }

    /// Bytes currently buffered and not yet consumed.
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Pops the next complete frame, `Ok(None)` if more bytes are needed.
    ///
    /// # Errors
    ///
    /// A [`FrameError`] permanently poisons the stream (framing offers no
    /// way to resynchronize with a peer that sends garbage); callers must
    /// drop the connection.
    pub fn next_frame(&mut self) -> Result<Option<Frame>, FrameError> {
        if self.poisoned {
            return Ok(None);
        }
        if self.buf.len() < FRAME_HEADER_BYTES {
            return Ok(None);
        }
        let magic = u32::from_be_bytes(self.buf[0..4].try_into().unwrap());
        if magic != FRAME_MAGIC {
            self.poisoned = true;
            return Err(FrameError::BadMagic(magic));
        }
        let Some(kind) = FrameKind::from_tag(self.buf[4]) else {
            self.poisoned = true;
            return Err(FrameError::BadKind(self.buf[4]));
        };
        let req_id = u32::from_be_bytes(self.buf[5..9].try_into().unwrap());
        let from = u32::from_be_bytes(self.buf[9..13].try_into().unwrap());
        let len = u32::from_be_bytes(self.buf[13..17].try_into().unwrap()) as usize;
        if len > self.max_frame_bytes {
            self.poisoned = true;
            return Err(FrameError::TooLarge {
                len,
                max: self.max_frame_bytes,
            });
        }
        if self.buf.len() < FRAME_HEADER_BYTES + len {
            return Ok(None);
        }
        let payload = self.buf[FRAME_HEADER_BYTES..FRAME_HEADER_BYTES + len].to_vec();
        self.buf.drain(..FRAME_HEADER_BYTES + len);
        Ok(Some(Frame {
            kind,
            req_id,
            from,
            payload,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(kind: FrameKind, req_id: u32, payload: &[u8]) -> Frame {
        Frame {
            kind,
            req_id,
            from: 9001,
            payload: payload.to_vec(),
        }
    }

    #[test]
    fn roundtrip_through_incremental_reader() {
        let frames = [
            frame(FrameKind::Request, 7, b"hello"),
            frame(FrameKind::Reply, 7, &[0u8; 300]),
            frame(FrameKind::CtrlStatus, 0, b""),
        ];
        let mut stream = Vec::new();
        for f in &frames {
            stream.extend_from_slice(&f.encode());
        }
        // Feed byte-by-byte: every frame must pop exactly once.
        let mut r = FrameReader::new(1 << 16);
        let mut got = Vec::new();
        for &b in &stream {
            r.feed(&[b]);
            while let Some(f) = r.next_frame().unwrap() {
                got.push(f);
            }
        }
        assert_eq!(got, frames);
        assert_eq!(r.buffered(), 0);
    }

    #[test]
    fn oversized_declaration_poisons_without_buffering() {
        let mut f = frame(FrameKind::Request, 1, b"x");
        f.payload = vec![0; 64];
        let mut bytes = f.encode();
        // Forge the length field to 256 MiB.
        bytes[13..17].copy_from_slice(&(256u32 << 20).to_be_bytes());
        let mut r = FrameReader::new(1 << 20);
        r.feed(&bytes);
        assert_eq!(
            r.next_frame().unwrap_err(),
            FrameError::TooLarge {
                len: 256 << 20,
                max: 1 << 20
            }
        );
        // Poisoned: further input is discarded, no frames ever pop.
        r.feed(&[0; 128]);
        assert!(r.next_frame().unwrap().is_none());
        assert_eq!(r.buffered(), bytes.len());
    }

    #[test]
    fn garbage_magic_and_kind_rejected() {
        let mut r = FrameReader::new(1 << 20);
        r.feed(&[0xde; FRAME_HEADER_BYTES]);
        assert!(matches!(r.next_frame(), Err(FrameError::BadMagic(_))));

        let mut bytes = frame(FrameKind::Oneway, 0, b"ok").encode();
        bytes[4] = 99;
        let mut r = FrameReader::new(1 << 20);
        r.feed(&bytes);
        assert_eq!(r.next_frame().unwrap_err(), FrameError::BadKind(99));
    }
}
