//! The event loop: a `SecureCyclonNode` on a real socket.
//!
//! Single-threaded by construction — the paper's node alternates between
//! one active gossip turn per cycle and passive request handling, so one
//! loop suffices:
//!
//! 1. A wall-clock shared across the cluster (`--epoch-millis`) maps
//!    real time to cycle numbers; each new cycle fires one active turn.
//! 2. The turn runs the *engine-targeted* `on_cycle_any` unchanged,
//!    behind a [`TurnDriver`] that carries its synchronous RPCs over TCP
//!    frames. Frames that arrive while the turn blocks on a reply are
//!    deferred and handled right after the turn — the same
//!    mid-turn-busy semantics the simulator enforces, with the same
//!    consequence: a busy peer looks like a timeout, which §V-A already
//!    tolerates (discard, never clone).
//! 3. Between turns the loop serves passive RPCs, proof floods, §V-A
//!    join handshakes, and control-socket scrapes.
//!
//! Founding members compute the ring bootstrap locally from the shared
//! cluster seed — a zero-message legal bootstrap. Late joiners and
//! rejoiners enter through the sponsorship handshake
//! ([`FrameKind::JoinRequest`] / [`FrameKind::JoinGrant`]).

use crate::config::NodeConfig;
use crate::control::StatusReport;
use crate::fault::FaultTransport;
use crate::frame::{Frame, FrameKind};
use crate::transport::{ConnId, Inbound, TcpTransport, Transport};
use sc_core::wire::{self, WireError};
use sc_core::{ring_bootstrap, FaultSpec, SecureCyclonNode, SecureMsg};
use sc_crypto::{PublicKey, PUBLIC_KEY_LEN};
use sc_sim::{testkit::with_node_ctx, Addr, CycleCtx, RpcOutcome, TurnDriver};
use std::collections::VecDeque;
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

/// Outcome of a completed daemon run, for the binary's exit report.
#[derive(Clone, Copy, Debug)]
pub struct RunSummary {
    /// Gossip cycles fired.
    pub cycles_run: u64,
    /// Wall-clock seconds the run loop was live.
    pub elapsed_secs: f64,
    /// Final protocol counters.
    pub stats: sc_core::SecureStats,
    /// Final transport counters.
    pub transport: crate::transport::TransportStats,
}

/// Cap on cached replies served to retransmitted requests.
const REPLY_CACHE_CAP: usize = 32;

/// A running SecureCyclon daemon.
pub struct Daemon {
    cfg: NodeConfig,
    node: SecureCyclonNode,
    transport: FaultTransport<TcpTransport>,
    joined: bool,
    start_cycle: u64,
    epoch_ms: u64,
    last_fired: Option<u64>,
    last_join_attempt: Option<u64>,
    /// Join requests awaiting the next turn boundary. Granting is
    /// deferred so `sponsor_join` spends a cycle's fresh-descriptor
    /// budget *before* that cycle's turn runs — a grant after the turn
    /// would be a second creation within one period, i.e. the sponsor
    /// would hand out a provable frequency violation against itself.
    pending_joins: VecDeque<(ConnId, PublicKey)>,
    next_req_id: u32,
    deferred: VecDeque<Inbound>,
    cycles_run: u64,
    shutdown: bool,
    /// A `CtrlFault` spec awaiting its cycle boundary, with the cycle it
    /// arrived in: applying only once the clock moves past that cycle
    /// keeps every cycle under exactly one spec.
    pending_fault: Option<(FaultSpec, u64)>,
    /// Replies to recent requests, keyed `(from, req_id, request
    /// payload)`, so a retransmitted request is answered byte-for-byte
    /// without re-running the protocol handler (idempotence).
    reply_cache: VecDeque<(Addr, u32, Vec<u8>, Vec<u8>)>,
    /// RPC request frames retransmitted inside their deadline.
    retransmits: u64,
    /// Turn deadlines that passed unfired (fell behind the shared clock).
    turns_skipped: u64,
}

fn unix_ms() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

impl Daemon {
    /// Binds the socket and installs the bootstrap state.
    ///
    /// Founding members (`sponsor == None`, `index < cluster_size`)
    /// derive every ring keypair from the cluster seed and keep their
    /// slice of the §V-A-legal ring bootstrap; sponsored joiners start
    /// with an empty view and acquire their first descriptor through the
    /// join handshake once the loop runs.
    ///
    /// # Errors
    ///
    /// Propagates socket bind failures and `--state-dir` I/O failures.
    pub fn new(cfg: NodeConfig) -> std::io::Result<Daemon> {
        let node = match &cfg.state_dir {
            Some(dir) => {
                let path = dir.join(format!("sc-node-{}.log", cfg.addr));
                let backend = Box::new(sc_core::FileBackend::open(path)?);
                SecureCyclonNode::with_backend(
                    cfg.keypair(),
                    cfg.addr,
                    cfg.secure,
                    cfg.rng_seed(),
                    cfg.phase(),
                    backend,
                )?
            }
            None => SecureCyclonNode::new(
                cfg.keypair(),
                cfg.addr,
                cfg.secure,
                cfg.rng_seed(),
                cfg.phase(),
            ),
        };
        // Anything recovered from the durable log means a previous life
        // already ran: re-installing the ring slice would re-insert
        // descriptors that may have been signed away since — self-made
        // cloning evidence. The frequency half of the same guard is the
        // recovered emission marker (`last_emission`).
        let recovered = !node.view().is_empty() || node.last_emission().is_some();
        let tcp = TcpTransport::bind(cfg.addr, cfg.connect_timeout, cfg.max_frame_bytes)?;
        let transport = FaultTransport::new(tcp, cfg.fault_spec.clone());
        let start_cycle = cfg.secure.view_len as u64;
        let epoch_ms = if cfg.epoch_millis == 0 {
            unix_ms()
        } else {
            cfg.epoch_millis
        };
        let mut daemon = Daemon {
            node,
            transport,
            joined: false,
            start_cycle,
            epoch_ms,
            last_fired: None,
            last_join_attempt: None,
            pending_joins: VecDeque::new(),
            next_req_id: 1,
            deferred: VecDeque::new(),
            cycles_run: 0,
            shutdown: false,
            pending_fault: None,
            reply_cache: VecDeque::new(),
            retransmits: 0,
            turns_skipped: 0,
            cfg,
        };
        if recovered {
            daemon.joined = !daemon.node.view().is_empty();
            // Founding members recompute start_cycle the same way the
            // ring plan does, so cycle numbers stay stable across lives.
            daemon.last_fired = daemon.node.last_emission();
        } else if daemon.cfg.sponsor.is_none() {
            daemon.install_ring_slice();
        }
        Ok(daemon)
    }

    /// Computes the shared ring bootstrap and keeps this node's slice.
    fn install_ring_slice(&mut self) {
        let n = self.cfg.cluster_size;
        assert!(
            self.cfg.index < n,
            "founding member index {} outside cluster of {n}",
            self.cfg.index
        );
        let tpc = self.cfg.secure.ticks_per_cycle;
        let keypairs: Vec<_> = (0..n).map(|i| self.cfg.keypair_for(i)).collect();
        let addrs: Vec<Addr> = (0..n).map(|i| self.cfg.base_addr + i as Addr).collect();
        let phases: Vec<u64> = (0..n).map(|i| sc_core::default_phase(i, tpc)).collect();
        let plan = ring_bootstrap(&keypairs, &addrs, &phases, self.cfg.secure.view_len, tpc);
        self.start_cycle = plan.start_cycle;
        let mine = plan.per_node.into_iter().nth(self.cfg.index).unwrap();
        for desc in mine {
            self.node.accept_bootstrap(desc);
        }
        self.joined = true;
    }

    /// The cycle number the shared wall clock currently maps to.
    fn current_cycle(&self) -> u64 {
        let elapsed = unix_ms().saturating_sub(self.epoch_ms);
        self.start_cycle + elapsed / self.cfg.cycle_ms
    }

    /// The latest cycle whose *turn point* has passed. Turns fire at
    /// `boundary + phase·cycle_ms/tpc` — the wall-clock image of the
    /// engine's per-node phase stagger — so initiations spread across the
    /// cycle instead of colliding at every boundary.
    fn due_turn_cycle(&self) -> Option<u64> {
        let elapsed = unix_ms().saturating_sub(self.epoch_ms);
        let phase_ms = self.cfg.phase() * self.cfg.cycle_ms / self.cfg.secure.ticks_per_cycle;
        if elapsed < phase_ms {
            return None;
        }
        Some(self.start_cycle + (elapsed - phase_ms) / self.cfg.cycle_ms)
    }

    /// Engine-convention tick for a cycle (the tick the cycle starts at).
    fn now_ticks(&self, cycle: u64) -> u64 {
        cycle * self.cfg.secure.ticks_per_cycle
    }

    /// Whether the node currently holds a usable view.
    pub fn joined(&self) -> bool {
        self.joined
    }

    /// Read access for tests and the status report.
    pub fn node(&self) -> &SecureCyclonNode {
        &self.node
    }

    /// Runs until `--run-cycles` completes or a shutdown frame arrives.
    ///
    /// With `--stop-cycle n`, the daemon stops *firing* turns once the
    /// shared clock reaches cycle `n` but lingers serving passive RPCs
    /// and control scrapes (up to `--linger-ms`): every member of a
    /// cluster stops at the same boundary, so a harness can scrape a
    /// quiescent network — no descriptor is ever in flight between two
    /// scrapes — before shutting the processes down.
    pub fn run(&mut self) -> RunSummary {
        let started = Instant::now();
        let mut stopped_at: Option<Instant> = None;
        while !self.shutdown {
            if self.cfg.run_cycles > 0 && self.cycles_run >= self.cfg.run_cycles {
                break;
            }
            self.apply_pending_fault();
            let stopping = self.cfg.stop_cycle > 0 && self.current_cycle() >= self.cfg.stop_cycle;
            if stopping {
                let since = *stopped_at.get_or_insert_with(Instant::now);
                if since.elapsed() >= Duration::from_millis(self.cfg.linger_ms) {
                    break;
                }
            } else if !self.joined {
                self.try_join(self.current_cycle());
            } else if let Some(due) = self.due_turn_cycle() {
                if self.last_fired.is_none_or(|c| due > c) {
                    if let Some(last) = self.last_fired {
                        // §IV-B allows one emission per period — a node
                        // that fell behind the shared clock (or was cut
                        // off by a partition) never back-fills missed
                        // turns, it just counts them.
                        self.turns_skipped += due - last - 1;
                    }
                    self.grant_pending_join(due);
                    self.fire_turn(due);
                    self.last_fired = Some(due);
                    self.cycles_run += 1;
                    while let Some(ib) = self.deferred.pop_front() {
                        self.handle(ib);
                    }
                }
            }
            if let Some(ib) = self.transport.recv(Duration::from_millis(2)) {
                self.handle(ib);
            }
        }
        RunSummary {
            cycles_run: self.cycles_run,
            elapsed_secs: started.elapsed().as_secs_f64(),
            stats: self.stats(),
            transport: self.transport.stats(),
        }
    }

    /// Installs a pending `CtrlFault` spec once the clock leaves the
    /// cycle it arrived in, so no cycle straddles two specs.
    fn apply_pending_fault(&mut self) {
        if let Some((_, rx_cycle)) = &self.pending_fault {
            if self.current_cycle() > *rx_cycle {
                let (spec, _) = self.pending_fault.take().unwrap();
                self.transport.set_spec(spec);
            }
        }
    }

    /// One active gossip turn through the engine-targeted protocol code.
    fn fire_turn(&mut self, cycle: u64) {
        let mut io = TurnIo {
            transport: &mut self.transport,
            deferred: &mut self.deferred,
            next_req_id: &mut self.next_req_id,
            retransmits: &mut self.retransmits,
            self_addr: self.cfg.addr,
            cycle,
            now: cycle * self.cfg.secure.ticks_per_cycle,
            tpc: self.cfg.secure.ticks_per_cycle,
            rpc_timeout: self.cfg.rpc_timeout,
            rpc_retransmits: self.cfg.rpc_retransmits,
            cfg: &self.cfg,
        };
        let mut ctx = CycleCtx::<SecureCyclonNode>::driven(self.cfg.addr, &mut io);
        self.node.on_cycle_any(&mut ctx);
    }

    /// Sends (at most once per cycle) a join request to the sponsor.
    fn try_join(&mut self, cycle: u64) {
        let Some(sponsor) = self.cfg.sponsor else {
            return;
        };
        if self.last_join_attempt == Some(cycle) {
            return;
        }
        self.last_join_attempt = Some(cycle);
        let payload = self.node.id().as_bytes().to_vec();
        let frame = Frame::new(FrameKind::JoinRequest, self.cfg.addr, payload);
        self.transport.send_to(sponsor, &frame);
    }

    /// Grants at most one queued sponsorship, called right before the
    /// turn for `cycle` fires: `sponsor_join` marks the cycle's
    /// fresh-descriptor budget spent, so the turn skips initiating and
    /// the sponsor stays frequency-legal (one creation per period).
    fn grant_pending_join(&mut self, cycle: u64) {
        let Some((conn, joiner)) = self.pending_joins.pop_front() else {
            return;
        };
        let now = self.now_ticks(cycle);
        let Some(desc) = self.node.sponsor_join(joiner, cycle, now) else {
            return; // budget already spent; joiner retries
        };
        let proofs = self.node.export_proofs();
        let mut payload = Vec::new();
        payload.extend_from_slice(&cycle.to_be_bytes());
        wire::encode_descriptor(&desc, &mut payload);
        payload.extend_from_slice(&(proofs.len() as u16).to_be_bytes());
        for p in &proofs {
            wire::encode_proof(p, &mut payload);
        }
        let f = Frame::new(FrameKind::JoinGrant, self.cfg.addr, payload);
        self.transport.respond(conn, &f);
    }

    /// Dispatches one inbound frame outside a turn.
    fn handle(&mut self, ib: Inbound) {
        let cycle = self.current_cycle();
        let period = self.cfg.secure.ticks_per_cycle;
        match ib.frame.kind {
            FrameKind::Request => {
                let from = ib.frame.from;
                // A retransmitted request (same initiator, same req_id,
                // byte-identical payload) gets the cached reply: running
                // the handler twice would double-apply the exchange.
                if ib.frame.req_id != 0 {
                    if let Some((_, _, _, cached)) = self.reply_cache.iter().find(|(a, r, p, _)| {
                        *a == from && *r == ib.frame.req_id && *p == ib.frame.payload
                    }) {
                        let mut f = Frame::new(FrameKind::Reply, self.cfg.addr, cached.clone());
                        f.req_id = ib.frame.req_id;
                        self.transport.respond(ib.conn, &f);
                        return;
                    }
                }
                let Ok(msg) =
                    wire::decode_message_with(&ib.frame.payload, period, &self.cfg.wire_limits)
                else {
                    return;
                };
                let reply = if self.joined {
                    let (reply, floods) = with_node_ctx(cycle, period, self.cfg.addr, |ctx| {
                        self.node.on_rpc_any(from, msg, ctx)
                    });
                    self.flood(floods);
                    reply
                } else {
                    None
                };
                // An explicit empty reply lets the initiator observe
                // "no answer" without waiting out its RPC timeout.
                let payload = reply.map_or_else(Vec::new, |m| {
                    let mut out = Vec::new();
                    wire::encode_message(&m, &mut out);
                    out
                });
                if ib.frame.req_id != 0 {
                    if self.reply_cache.len() >= REPLY_CACHE_CAP {
                        self.reply_cache.pop_front();
                    }
                    self.reply_cache.push_back((
                        from,
                        ib.frame.req_id,
                        ib.frame.payload.clone(),
                        payload.clone(),
                    ));
                }
                let mut f = Frame::new(FrameKind::Reply, self.cfg.addr, payload);
                f.req_id = ib.frame.req_id;
                self.transport.respond(ib.conn, &f);
            }
            FrameKind::Oneway => {
                let Ok(msg) =
                    wire::decode_message_with(&ib.frame.payload, period, &self.cfg.wire_limits)
                else {
                    return;
                };
                let ((), floods) = with_node_ctx(cycle, period, self.cfg.addr, |ctx| {
                    self.node.on_oneway_any(ib.frame.from, msg, ctx)
                });
                self.flood(floods);
            }
            FrameKind::JoinRequest => {
                if ib.frame.payload.len() != PUBLIC_KEY_LEN {
                    return;
                }
                let mut key = [0u8; PUBLIC_KEY_LEN];
                key.copy_from_slice(&ib.frame.payload);
                let Some(joiner) = PublicKey::from_bytes(key) else {
                    return;
                };
                if !self.joined {
                    return;
                }
                // Queue for the next turn boundary; the joiner retries
                // each cycle, so drop duplicate keys instead of stacking
                // grants for one joiner.
                if !self.pending_joins.iter().any(|(_, k)| *k == joiner) {
                    self.pending_joins.push_back((ib.conn, joiner));
                }
            }
            FrameKind::JoinGrant => {
                if self.joined {
                    return;
                }
                if let Ok((desc, proofs)) =
                    decode_join_grant(&ib.frame.payload, period, &self.cfg.wire_limits)
                {
                    if self.node.accept_sponsorship(desc, cycle) {
                        self.node.import_proofs(proofs, cycle);
                        self.joined = true;
                        // Gossip starts next cycle; never replay the one
                        // the sponsor spent its budget on.
                        self.last_fired = Some(cycle);
                    }
                }
            }
            FrameKind::CtrlStatus => {
                let report = self.status_report(cycle);
                let f = Frame::new(FrameKind::CtrlStatusReply, self.cfg.addr, report.encode());
                self.transport.respond(ib.conn, &f);
            }
            FrameKind::CtrlShutdown => {
                self.shutdown = true;
            }
            FrameKind::CtrlFault => {
                let Ok((spec, _)) = FaultSpec::decode(&ib.frame.payload) else {
                    return; // malformed spec: no ack, client times out
                };
                self.pending_fault = Some((spec, cycle));
                let mut f = Frame::new(FrameKind::CtrlFaultReply, self.cfg.addr, Vec::new());
                f.req_id = ib.frame.req_id;
                self.transport.respond(ib.conn, &f);
            }
            FrameKind::Reply | FrameKind::CtrlStatusReply | FrameKind::CtrlFaultReply => {
                // Stale RPC replies (their turn already timed out) and
                // misdirected control traffic are dropped.
            }
        }
    }

    /// Sends queued proof floods as one-way frames.
    fn flood(&mut self, msgs: Vec<(Addr, SecureMsg)>) {
        for (to, msg) in msgs {
            let mut payload = Vec::new();
            wire::encode_message(&msg, &mut payload);
            let f = Frame::new(FrameKind::Oneway, self.cfg.addr, payload);
            self.transport.send_to(to, &f);
        }
    }

    /// Snapshot of the node's oracle-relevant state.
    fn status_report(&self, cycle: u64) -> StatusReport {
        StatusReport {
            addr: self.cfg.addr,
            id: self.node.id(),
            cycle,
            joined: self.joined,
            cycles_run: self.cycles_run,
            view: self
                .node
                .view()
                .iter()
                .map(|e| (e.desc.clone(), e.non_swappable))
                .collect(),
            reserve: self.node.reserve().cloned().collect(),
            blacklist: self.node.blacklist().culprits().copied().collect(),
            redemptions: self.node.redemption_count(),
            stats: self.stats(),
            transport: self.transport.stats(),
            retransmits: self.retransmits,
            turns_skipped: self.turns_skipped,
        }
    }

    /// Protocol counters. §VI-A byte accounting now lives in the node
    /// itself ([`sc_core::SecureStats::bytes_sent`]), metered at every
    /// message site, so daemon and simulator report identically.
    fn stats(&self) -> sc_core::SecureStats {
        self.node.stats()
    }
}

/// Parses a join grant: `cycle (8) | descriptor | n (2) | proofs`.
fn decode_join_grant(
    buf: &[u8],
    period: u64,
    limits: &wire::WireLimits,
) -> Result<(sc_core::SecureDescriptor, Vec<sc_core::ViolationProof>), WireError> {
    if buf.len() < 8 {
        return Err(WireError::UnexpectedEnd);
    }
    let mut pos = 8; // sponsor cycle: informational; the clock is shared
    let (desc, used) = wire::decode_descriptor_with(&buf[pos..], limits)?;
    pos += used;
    if buf.len() < pos + 2 {
        return Err(WireError::UnexpectedEnd);
    }
    let n = u16::from_be_bytes([buf[pos], buf[pos + 1]]) as usize;
    pos += 2;
    if n > limits.max_proofs {
        return Err(WireError::TooManyProofs(n as u16));
    }
    let mut proofs = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        let (p, used) = wire::decode_proof_with(&buf[pos..], period, limits)?;
        pos += used;
        proofs.push(p);
    }
    Ok((desc, proofs))
}

/// Carries one turn's RPCs and sends over the transport; frames that are
/// not the awaited reply are deferred to after the turn.
struct TurnIo<'a> {
    transport: &'a mut FaultTransport<TcpTransport>,
    deferred: &'a mut VecDeque<Inbound>,
    next_req_id: &'a mut u32,
    retransmits: &'a mut u64,
    self_addr: Addr,
    cycle: u64,
    now: u64,
    tpc: u64,
    rpc_timeout: Duration,
    rpc_retransmits: u32,
    cfg: &'a NodeConfig,
}

impl TurnDriver<SecureMsg> for TurnIo<'_> {
    fn cycle(&self) -> u64 {
        self.cycle
    }

    fn now(&self) -> u64 {
        self.now
    }

    fn ticks_per_cycle(&self) -> u64 {
        self.tpc
    }

    fn rpc(&mut self, to: Addr, msg: SecureMsg) -> RpcOutcome<SecureMsg> {
        let req_id = *self.next_req_id;
        *self.next_req_id = self.next_req_id.wrapping_add(1).max(1);
        let mut payload = Vec::new();
        wire::encode_message(&msg, &mut payload);
        let mut f = Frame::new(FrameKind::Request, self.self_addr, payload);
        f.req_id = req_id;
        if !self.transport.send_to(to, &f) {
            return RpcOutcome::Timeout;
        }
        // The deadline splits into retransmit slices: an unanswered
        // request is resent byte-identically (same req_id, same
        // descriptor) at each slice boundary. Never a re-emission — the
        // §IV-B frequency rule forbids a second descriptor per period —
        // and the responder's reply cache keeps duplicates idempotent.
        let start = Instant::now();
        let deadline = start + self.rpc_timeout;
        let slice = self.rpc_timeout / (self.rpc_retransmits + 1);
        let mut resends_left = self.rpc_retransmits;
        let mut next_resend = start + slice;
        loop {
            let now = Instant::now();
            let left = deadline.saturating_duration_since(now);
            if left.is_zero() {
                return RpcOutcome::Timeout;
            }
            if resends_left > 0 && now >= next_resend {
                resends_left -= 1;
                next_resend = now + slice;
                if self.transport.send_to(to, &f) {
                    *self.retransmits += 1;
                }
            }
            let Some(ib) = self.transport.recv(left.min(Duration::from_millis(2))) else {
                continue;
            };
            if ib.frame.kind == FrameKind::Reply {
                if ib.frame.req_id != req_id {
                    continue; // stale reply from a timed-out earlier RPC
                }
                if ib.frame.payload.is_empty() {
                    return RpcOutcome::Timeout; // explicit no-answer
                }
                return match wire::decode_message_with(
                    &ib.frame.payload,
                    self.tpc,
                    &self.cfg.wire_limits,
                ) {
                    Ok(m) => RpcOutcome::Reply(m),
                    Err(_) => RpcOutcome::Timeout,
                };
            }
            self.deferred.push_back(ib);
        }
    }

    fn send(&mut self, to: Addr, msg: SecureMsg) {
        let mut payload = Vec::new();
        wire::encode_message(&msg, &mut payload);
        let f = Frame::new(FrameKind::Oneway, self.self_addr, payload);
        self.transport.send_to(to, &f);
    }
}
