//! Daemon configuration and the `sc-node` flag parser.
//!
//! Addresses are protocol [`Addr`]s *and* TCP ports: a node at protocol
//! address `a` listens on `127.0.0.1:a`. That keeps the engine-targeted
//! protocol code (which routes by `Addr`) and the socket layer in exact
//! correspondence for loopback clusters.

use sc_core::wire::WireLimits;
use sc_core::{FaultSpec, SecureConfig};
use sc_crypto::{Keypair, Scheme};
use sc_sim::Addr;
use std::path::PathBuf;
use std::time::Duration;

/// Everything an `sc-node` process needs to run.
#[derive(Clone, Debug)]
pub struct NodeConfig {
    /// Protocol address == loopback TCP port.
    pub addr: Addr,
    /// Cluster seed; all key material derives from it (`SC_NODE_SEED`).
    pub seed: u64,
    /// This node's index in the deterministic key schedule.
    pub index: usize,
    /// Number of ring-bootstrap members (indices `0..cluster_size` at
    /// ports `base_addr..base_addr+cluster_size`).
    pub cluster_size: usize,
    /// Port of ring member 0.
    pub base_addr: Addr,
    /// Join a running cluster through this sponsor instead of holding a
    /// ring-bootstrap slice (`None` for founding members).
    pub sponsor: Option<Addr>,
    /// Wall-clock gossip period.
    pub cycle_ms: u64,
    /// Shared UNIX-epoch offset (milliseconds) cycle numbers count from.
    pub epoch_millis: u64,
    /// Exit after this many gossip cycles (`0` = run forever).
    pub run_cycles: u64,
    /// Stop firing turns once the shared clock reaches this cycle
    /// (`0` = never). Unlike [`NodeConfig::run_cycles`], the daemon then
    /// *lingers*: it keeps serving passive RPCs and control scrapes, so a
    /// harness can read a quiescent cluster's final state without torn
    /// cross-process snapshots, then shut everything down.
    pub stop_cycle: u64,
    /// How long a stopped daemon lingers awaiting a shutdown frame before
    /// exiting on its own (safety net against leaked processes).
    pub linger_ms: u64,
    /// Signature scheme for the whole cluster.
    pub scheme: Scheme,
    /// Protocol sizing.
    pub secure: SecureConfig,
    /// Decode-side wire limits.
    pub wire_limits: WireLimits,
    /// Cap on one frame's payload (also bounds decode allocation).
    pub max_frame_bytes: usize,
    /// TCP connect timeout.
    pub connect_timeout: Duration,
    /// How long an in-turn RPC waits for its reply.
    pub rpc_timeout: Duration,
    /// How many times an unanswered RPC request is retransmitted inside
    /// [`NodeConfig::rpc_timeout`]. Always the byte-identical frame —
    /// never a re-emission, so the §IV-B frequency rule holds; the
    /// responder serves duplicates from a reply cache.
    pub rpc_retransmits: u32,
    /// Fault-injection spec the transport starts under (`--fault-spec`;
    /// defaults to no faults). Reconfigurable at cycle boundaries
    /// through `CtrlFault` control frames.
    pub fault_spec: FaultSpec,
    /// Durable-state directory. When set, the daemon appends its
    /// incriminating-if-lost state to `<dir>/sc-node-<addr>.log` and
    /// recovers from it on boot, so a `kill -9` mid-cycle cannot make a
    /// restarted honest node accuse itself (`None` = in-memory only).
    pub state_dir: Option<PathBuf>,
}

impl NodeConfig {
    /// Baseline configuration for `addr`/`index` with everything else at
    /// defaults (100 ms cycles, Schnorr signatures, paper-default view).
    pub fn new(addr: Addr, index: usize) -> NodeConfig {
        NodeConfig {
            addr,
            seed: 1,
            index,
            cluster_size: 0,
            base_addr: addr.saturating_sub(index as Addr),
            sponsor: None,
            cycle_ms: 100,
            epoch_millis: 0,
            run_cycles: 0,
            stop_cycle: 0,
            linger_ms: 30_000,
            scheme: Scheme::Schnorr61,
            secure: SecureConfig::default(),
            wire_limits: WireLimits::DEFAULT,
            max_frame_bytes: super::frame::DEFAULT_MAX_FRAME_BYTES,
            connect_timeout: Duration::from_millis(250),
            rpc_timeout: Duration::from_millis(40),
            rpc_retransmits: 1,
            fault_spec: FaultSpec::default(),
            state_dir: None,
        }
    }

    /// The keypair of the node at `index` under this cluster's seed.
    ///
    /// Every process derives the same schedule, so founding members can
    /// compute the entire ring bootstrap locally — a zero-message legal
    /// bootstrap, exactly like the simulator's.
    pub fn keypair_for(&self, index: usize) -> Keypair {
        let mut seed = [0u8; 32];
        seed[..8].copy_from_slice(&self.seed.to_le_bytes());
        seed[8..16].copy_from_slice(&(index as u64).to_le_bytes());
        seed[16] = 0x5c;
        Keypair::from_seed(self.scheme, seed)
    }

    /// This node's own keypair.
    pub fn keypair(&self) -> Keypair {
        self.keypair_for(self.index)
    }

    /// This node's deterministic timestamp phase.
    pub fn phase(&self) -> u64 {
        sc_core::default_phase(self.index, self.secure.ticks_per_cycle)
    }

    /// The RNG seed for the node's protocol randomness.
    pub fn rng_seed(&self) -> [u8; 32] {
        let mut s = [0u8; 32];
        s[..8].copy_from_slice(&self.seed.to_le_bytes());
        s[8..16].copy_from_slice(&(self.index as u64).to_le_bytes());
        s[16] = 0xa7;
        s
    }

    /// Parses command-line flags (`--flag value` pairs).
    ///
    /// # Errors
    ///
    /// A human-readable message naming the offending flag.
    pub fn parse(args: &[String]) -> Result<NodeConfig, String> {
        let mut addr: Option<Addr> = None;
        let mut cfg = NodeConfig::new(0, 0);
        let mut view_len = None;
        let mut swap_len = None;
        let mut base_addr = None;
        let mut it = args.iter();
        while let Some(flag) = it.next() {
            let mut val = |name: &str| -> Result<&String, String> {
                it.next().ok_or_else(|| format!("{name} needs a value"))
            };
            match flag.as_str() {
                "--addr" => addr = Some(parse_num(val("--addr")?, "--addr")?),
                "--seed" => cfg.seed = parse_num(val("--seed")?, "--seed")?,
                "--index" => cfg.index = parse_num(val("--index")?, "--index")?,
                "--cluster-size" => {
                    cfg.cluster_size = parse_num(val("--cluster-size")?, "--cluster-size")?;
                }
                "--base-addr" => base_addr = Some(parse_num(val("--base-addr")?, "--base-addr")?),
                "--sponsor" => cfg.sponsor = Some(parse_num(val("--sponsor")?, "--sponsor")?),
                "--cycle-ms" => cfg.cycle_ms = parse_num(val("--cycle-ms")?, "--cycle-ms")?,
                "--epoch-millis" => {
                    cfg.epoch_millis = parse_num(val("--epoch-millis")?, "--epoch-millis")?;
                }
                "--run-cycles" => cfg.run_cycles = parse_num(val("--run-cycles")?, "--run-cycles")?,
                "--stop-cycle" => cfg.stop_cycle = parse_num(val("--stop-cycle")?, "--stop-cycle")?,
                "--linger-ms" => cfg.linger_ms = parse_num(val("--linger-ms")?, "--linger-ms")?,
                "--view-len" => view_len = Some(parse_num(val("--view-len")?, "--view-len")?),
                "--swap-len" => swap_len = Some(parse_num(val("--swap-len")?, "--swap-len")?),
                "--scheme" => {
                    cfg.scheme = match val("--scheme")?.as_str() {
                        "keyed" => Scheme::KeyedHash,
                        "schnorr" => Scheme::Schnorr61,
                        other => return Err(format!("unknown --scheme '{other}'")),
                    };
                }
                "--max-frame-bytes" => {
                    cfg.max_frame_bytes =
                        parse_num(val("--max-frame-bytes")?, "--max-frame-bytes")?;
                }
                "--rpc-timeout-ms" => {
                    cfg.rpc_timeout = Duration::from_millis(parse_num(
                        val("--rpc-timeout-ms")?,
                        "--rpc-timeout-ms",
                    )?);
                }
                "--rpc-retransmits" => {
                    cfg.rpc_retransmits =
                        parse_num(val("--rpc-retransmits")?, "--rpc-retransmits")?;
                }
                "--fault-spec" => {
                    cfg.fault_spec = FaultSpec::parse(val("--fault-spec")?)?;
                }
                "--state-dir" => cfg.state_dir = Some(PathBuf::from(val("--state-dir")?)),
                other => return Err(format!("unknown flag '{other}'")),
            }
        }
        let addr = addr.ok_or("--addr is required")?;
        cfg.addr = addr;
        cfg.base_addr = base_addr.unwrap_or_else(|| addr.saturating_sub(cfg.index as Addr));
        if let Some(v) = view_len {
            cfg.secure = cfg.secure.with_view_len(v);
        }
        if let Some(s) = swap_len {
            cfg.secure = cfg.secure.with_swap_len(s);
        }
        cfg.wire_limits = WireLimits {
            max_frame_bytes: cfg.max_frame_bytes,
            ..WireLimits::DEFAULT
        };
        if cfg.cycle_ms == 0 {
            return Err("--cycle-ms must be positive".into());
        }
        if addr > u16::MAX as Addr || addr == 0 {
            return Err("--addr must be a TCP port (1..=65535)".into());
        }
        Ok(cfg)
    }
}

fn parse_num<T: std::str::FromStr>(s: &str, flag: &str) -> Result<T, String> {
    s.parse()
        .map_err(|_| format!("{flag}: '{s}' is not a valid number"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parses_a_founding_member() {
        let cfg = NodeConfig::parse(&args(
            "--addr 41003 --base-addr 41000 --index 3 --cluster-size 16 \
             --seed 42 --cycle-ms 50 --view-len 8 --swap-len 3 --scheme keyed",
        ))
        .unwrap();
        assert_eq!(cfg.addr, 41003);
        assert_eq!(cfg.base_addr, 41000);
        assert_eq!(cfg.cluster_size, 16);
        assert_eq!(cfg.secure.view_len, 8);
        assert_eq!(cfg.scheme, Scheme::KeyedHash);
        assert!(cfg.sponsor.is_none());
        assert!(cfg.state_dir.is_none());
    }

    #[test]
    fn parses_a_state_dir() {
        let cfg = NodeConfig::parse(&args(
            "--addr 41000 --state-dir /tmp/sc-state --scheme keyed",
        ))
        .unwrap();
        assert_eq!(
            cfg.state_dir.as_deref(),
            Some(std::path::Path::new("/tmp/sc-state"))
        );
    }

    #[test]
    fn parses_fault_and_retransmit_flags() {
        let cfg = NodeConfig::parse(&args(
            "--addr 41000 --scheme keyed --rpc-retransmits 2 \
             --fault-spec seed=5,drop=0.1,sever=41003",
        ))
        .unwrap();
        assert_eq!(cfg.rpc_retransmits, 2);
        assert_eq!(cfg.fault_spec.seed, 5);
        assert_eq!(cfg.fault_spec.drop_out, 0.1);
        assert!(cfg.fault_spec.severs(41003));
        assert!(NodeConfig::parse(&args("--addr 41000 --fault-spec drop=2")).is_err());
        // The default spec injects nothing.
        let plain = NodeConfig::parse(&args("--addr 41000")).unwrap();
        assert!(plain.fault_spec.is_noop());
        assert_eq!(plain.rpc_retransmits, 1);
    }

    #[test]
    fn key_schedule_is_shared_and_distinct() {
        let a = NodeConfig::parse(&args("--addr 41000 --seed 7 --scheme keyed")).unwrap();
        let b = NodeConfig::parse(&args("--addr 41001 --index 1 --seed 7 --scheme keyed")).unwrap();
        assert_eq!(a.keypair_for(1).public(), b.keypair().public());
        assert_ne!(a.keypair().public(), b.keypair().public());
    }

    #[test]
    fn rejects_bad_flags() {
        assert!(NodeConfig::parse(&args("--addr nope")).is_err());
        assert!(NodeConfig::parse(&args("--port 1")).is_err());
        assert!(NodeConfig::parse(&args("")).is_err());
        assert!(NodeConfig::parse(&args("--addr 70000")).is_err());
    }
}
