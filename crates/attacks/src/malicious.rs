//! The malicious SecureCyclon participant.
//!
//! A malicious node speaks the SecureCyclon wire protocol well enough to
//! blend in — valid redemption certificates, a frequency-legal fresh
//! descriptor per cycle, plausible samples — but runs none of the §IV-B
//! defenses, ignores proofs, and deviates according to its
//! [`SecureAttack`] strategy once the agreed attack cycle arrives:
//!
//! * [`SecureAttack::Hub`] — presents views consisting exclusively of
//!   cloned party descriptors and harvests victims' descriptors as future
//!   redemption certificates (§VI-B).
//! * [`SecureAttack::Depletion`] — answers exchanges with an empty
//!   transfer list to bleed victims' views (§VI-C / Figure 6).
//! * [`SecureAttack::Cloner`] — double-spends one held descriptor when it
//!   reaches a target age, to probe the redemption cache (§VI-D /
//!   Figure 7).
//! * [`SecureAttack::Frequency`] — mints extra fresh descriptors inside a
//!   single cycle (the frequency violation of §III).
//! * [`SecureAttack::None`] — a permanently correct-ish control node.

use crate::party::SecureParty;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sc_core::{
    AcceptBody, DescriptorId, LinkKind, RequestBody, RoundBody, RoundReplyBody, SecureDescriptor,
    SecureMsg, Timestamp,
};
use sc_crypto::{Keypair, NodeId};
use sc_sim::{Addr, CycleCtx, NodeCtx, RpcOutcome, SimNode};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// What a malicious node does once the attack starts.
#[derive(Clone, Debug)]
pub enum SecureAttack {
    /// Never deviates (control group).
    None,
    /// Hub attack: all-malicious views via pool cloning (Figure 5).
    Hub,
    /// Link-depletion: empty responses (Figure 6).
    Depletion,
    /// Age-targeted double-spend (Figure 7). Ages are in cycles.
    Cloner {
        /// Clone a held descriptor when its age reaches this value.
        target_age: u64,
        /// Shared ledger recording clone events for measurement.
        ledger: Arc<Mutex<CloneLedger>>,
    },
    /// Frequency violation: `extra` additional creations per cycle.
    Frequency {
        /// Extra fresh descriptors minted per cycle beyond the legal one.
        extra: u32,
    },
}

/// A record of one deliberate descriptor duplication (Figure 7 bookkeeping).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CloneEvent {
    /// Identity of the cloned descriptor.
    pub desc: DescriptorId,
    /// Descriptor age, in cycles, at duplication time.
    pub age_cycles: u64,
    /// Cycle the duplication happened.
    pub cycle: u64,
}

/// Shared ledger of clone events, filled by attackers and read by the
/// experiment harness to compute detection ratios.
#[derive(Debug, Default)]
pub struct CloneLedger {
    /// All duplication events in order.
    pub events: Vec<CloneEvent>,
}

impl CloneLedger {
    /// Creates an empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a duplication.
    pub fn register(&mut self, desc: DescriptorId, age_cycles: u64, cycle: u64) {
        self.events.push(CloneEvent {
            desc,
            age_cycles,
            cycle,
        });
    }
}

struct MalSession {
    partner: NodeId,
    remaining: usize,
}

/// A malicious SecureCyclon node.
pub struct MaliciousSecureNode {
    keypair: Keypair,
    id: NodeId,
    addr: Addr,
    phase: u64,
    view_len: usize,
    swap_len: usize,
    ticks_per_cycle: u64,
    tit_for_tat: bool,
    attack: SecureAttack,
    attack_start: u64,
    owned: Vec<SecureDescriptor>,
    party: Arc<Mutex<SecureParty>>,
    sessions: HashMap<Addr, MalSession>,
    /// Cloner state: the retained pre-state of a descriptor whose first
    /// copy has been sent, and who received that copy.
    pending_clone: Option<(SecureDescriptor, NodeId)>,
    /// Descriptor ids already cloned (each target descriptor is
    /// double-spent once).
    cloned_ids: std::collections::HashSet<DescriptorId>,
    rng: SmallRng,
}

impl core::fmt::Debug for MaliciousSecureNode {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("MaliciousSecureNode")
            .field("id", &self.id)
            .field("addr", &self.addr)
            .field("attack", &self.attack)
            .field("owned", &self.owned.len())
            .finish()
    }
}

impl MaliciousSecureNode {
    /// Creates a malicious node.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        keypair: Keypair,
        addr: Addr,
        view_len: usize,
        swap_len: usize,
        ticks_per_cycle: u64,
        tit_for_tat: bool,
        attack: SecureAttack,
        attack_start: u64,
        party: Arc<Mutex<SecureParty>>,
        rng_seed: [u8; 32],
        phase: u64,
    ) -> Self {
        let id = keypair.public();
        MaliciousSecureNode {
            keypair,
            id,
            addr,
            phase,
            view_len,
            swap_len,
            ticks_per_cycle,
            tit_for_tat,
            attack,
            attack_start,
            owned: Vec::new(),
            party,
            sessions: HashMap::new(),
            pending_clone: None,
            cloned_ids: std::collections::HashSet::new(),
            rng: SmallRng::from_seed(rng_seed),
        }
    }

    /// The node's id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The node's address.
    pub fn addr(&self) -> Addr {
        self.addr
    }

    /// Number of descriptors currently owned.
    pub fn owned_len(&self) -> usize {
        self.owned.len()
    }

    /// Installs a bootstrap descriptor.
    pub fn accept_bootstrap(&mut self, desc: SecureDescriptor) {
        self.owned.push(desc);
    }

    fn attacking(&self, cycle: u64) -> bool {
        cycle >= self.attack_start && !matches!(self.attack, SecureAttack::None)
    }

    fn store_owned(&mut self, d: SecureDescriptor) {
        if d.owner() != self.id || d.is_redeemed() || d.creator() == self.id {
            return;
        }
        if self.owned.len() >= self.view_len * 2 {
            // Plenty of links already; drop the oldest.
            let idx = self
                .owned
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.created_at())
                .map(|(i, _)| i)
                .unwrap();
            self.owned.swap_remove(idx);
        }
        self.owned.push(d);
    }

    fn remove_oldest_owned(&mut self) -> Option<SecureDescriptor> {
        let idx = self
            .owned
            .iter()
            .enumerate()
            .min_by_key(|(_, e)| e.created_at())
            .map(|(i, _)| i)?;
        Some(self.owned.swap_remove(idx))
    }

    fn remove_random_owned_excluding(&mut self, partner: &NodeId) -> Option<SecureDescriptor> {
        let candidates: Vec<usize> = self
            .owned
            .iter()
            .enumerate()
            .filter(|(_, d)| d.creator() != *partner)
            .map(|(i, _)| i)
            .collect();
        if candidates.is_empty() {
            return None;
        }
        let idx = candidates[self.rng.gen_range(0..candidates.len())];
        Some(self.owned.swap_remove(idx))
    }

    /// Mints the cycle's fresh self-descriptor and contributes a copy of
    /// its genesis form to the party pool (§VI-B: "a central pool of
    /// descriptors, comprising copies of all the descriptors generated by
    /// malicious nodes in recent cycles").
    fn mint_fresh(&mut self, now: u64) -> SecureDescriptor {
        let fresh = SecureDescriptor::create(&self.keypair, self.addr, Timestamp(now + self.phase));
        self.party.lock().unwrap().contribute_pool(fresh.clone());
        fresh
    }

    /// The next descriptor to hand a partner. Honest-mode behavior, with
    /// the cloner twist: descriptors that reached the target age are
    /// double-spent across two different partners.
    fn next_transfer(&mut self, partner: NodeId, cycle: u64, now: u64) -> Option<SecureDescriptor> {
        if let SecureAttack::Cloner { target_age, ledger } = &self.attack {
            let target_age = *target_age;
            let ledger = Arc::clone(ledger);
            if cycle >= self.attack_start {
                // Second copy of a pending clone, to a *different* partner.
                if let Some((pre, first)) = self.pending_clone.take() {
                    if first != partner && pre.creator() != partner {
                        return pre.transfer(&self.keypair, partner).ok();
                    }
                    self.pending_clone = Some((pre, first));
                }
                // First copy of a descriptor that just reached target age.
                if self.pending_clone.is_none() {
                    let pos = self.owned.iter().position(|d| {
                        d.age_cycles(Timestamp(now), self.ticks_per_cycle) >= target_age
                            && d.creator() != partner
                            && !self.cloned_ids.contains(&d.id())
                            && !self.party.lock().unwrap().is_member(&d.creator())
                    });
                    if let Some(pos) = pos {
                        let pre = self.owned.swap_remove(pos);
                        let age = pre.age_cycles(Timestamp(now), self.ticks_per_cycle);
                        self.cloned_ids.insert(pre.id());
                        ledger.lock().unwrap().register(pre.id(), age, cycle);
                        let out = pre.transfer(&self.keypair, partner).ok();
                        self.pending_clone = Some((pre, partner));
                        return out;
                    }
                }
            }
        }
        let pre = self.remove_random_owned_excluding(&partner)?;
        pre.transfer(&self.keypair, partner).ok()
    }

    /// Correct-looking samples: copies of the owned set (pre-attack), or
    /// consistent snapshots of the malicious pool (hub attack — "a fake
    /// view consisting exclusively of descriptors to other malicious
    /// nodes", §VI-B).
    fn samples(&mut self, cycle: u64) -> Vec<SecureDescriptor> {
        if matches!(self.attack, SecureAttack::Hub) && self.attacking(cycle) {
            let party = self.party.lock().unwrap();
            let _ = &party;
            // Identical pool snapshots everywhere: samples alone never
            // conflict, maximizing the attack's stealth. The *transfers*
            // are where cloning is unavoidable.
            return Vec::new();
        }
        self.owned.clone()
    }

    // ------------------------------------------------------------------
    // Active side
    // ------------------------------------------------------------------

    /// The active-thread logic, generic for wrapper enums.
    pub fn on_cycle_any<N: SimNode<Msg = SecureMsg>>(&mut self, ctx: &mut CycleCtx<'_, N>) {
        let cycle = ctx.cycle();
        let now = ctx.now();
        self.sessions.clear();
        self.party.lock().unwrap().prune_pool(Timestamp(now));

        if matches!(self.attack, SecureAttack::Hub) && self.attacking(cycle) {
            self.hub_initiate(ctx, cycle, now);
        } else {
            self.correct_initiate(ctx, cycle, now);
        }
    }

    /// Pre-attack / non-hub initiation: a protocol-conformant exchange.
    fn correct_initiate<N: SimNode<Msg = SecureMsg>>(
        &mut self,
        ctx: &mut CycleCtx<'_, N>,
        cycle: u64,
        now: u64,
    ) {
        let Some(oldest) = self.remove_oldest_owned() else {
            return;
        };
        let partner_id = oldest.creator();
        let partner_addr = oldest.addr();
        let Ok(redeemed) = oldest.redeem(&self.keypair, LinkKind::Redeem) else {
            return;
        };
        let fresh = self.mint_fresh(now);
        let Ok(fresh_out) = fresh.transfer(&self.keypair, partner_id) else {
            return;
        };

        let mut offered = Vec::new();
        if !self.tit_for_tat {
            for _ in 1..self.swap_len {
                if let Some(t) = self.next_transfer(partner_id, cycle, now) {
                    offered.push(t);
                }
            }
        }
        let extra = if let SecureAttack::Frequency { extra } = self.attack {
            if self.attacking(cycle) {
                extra
            } else {
                0
            }
        } else {
            0
        };
        let mut samples = self.samples(cycle);
        for j in 0..extra {
            // Deliberate frequency violation: several creations within one
            // period, shipped as samples for victims to cross-check.
            let ts = Timestamp(now + self.phase + 1 + j as u64);
            samples.push(SecureDescriptor::create(&self.keypair, self.addr, ts));
        }

        let request = SecureMsg::Request(Box::new(RequestBody {
            redeemed,
            fresh: fresh_out,
            offered,
            samples,
            proofs: Vec::new(),
        }));
        if let RpcOutcome::Reply(SecureMsg::Accept(body)) = ctx.rpc(partner_addr, request) {
            let got_any = !body.transfers.is_empty();
            for t in body.transfers {
                self.harvest_or_store(t, cycle);
            }
            if self.tit_for_tat && got_any {
                for _ in 1..self.swap_len {
                    let Some(out) = self.next_transfer(partner_id, cycle, now) else {
                        break;
                    };
                    match ctx.rpc(
                        partner_addr,
                        SecureMsg::Round(Box::new(RoundBody { transfer: out })),
                    ) {
                        RpcOutcome::Reply(SecureMsg::RoundReply(r)) => match r.transfer {
                            Some(d) => self.harvest_or_store(d, cycle),
                            None => break,
                        },
                        _ => break,
                    }
                }
            }
        }
    }

    /// Hub-mode initiation: redeem a harvested victim token and flood the
    /// victim with clones.
    fn hub_initiate<N: SimNode<Msg = SecureMsg>>(
        &mut self,
        ctx: &mut CycleCtx<'_, N>,
        cycle: u64,
        now: u64,
    ) {
        // Prefer a harvested token; fall back to a legitimately owned
        // honest descriptor.
        let token = {
            let mut party = self.party.lock().unwrap();
            party.take_token_for(&self.id, &mut self.rng)
        }
        .or_else(|| {
            let party = self.party.lock().unwrap();
            let pos = self
                .owned
                .iter()
                .position(|d| !party.is_member(&d.creator()));
            drop(party);
            pos.map(|p| self.owned.swap_remove(p))
        });
        let Some(token) = token else {
            return; // no certificate toward any honest node this cycle
        };
        let victim_id = token.creator();
        let victim_addr = token.addr();
        let Ok(redeemed) = token.redeem(&self.keypair, LinkKind::Redeem) else {
            return;
        };
        let fresh = self.mint_fresh(now);
        let Ok(fresh_out) = fresh.transfer(&self.keypair, victim_id) else {
            return;
        };

        let mut offered = Vec::new();
        if !self.tit_for_tat {
            let mut party = self.party.lock().unwrap();
            for _ in 1..self.swap_len {
                if let Some(c) = party.clone_for_victim(&self.id, &victim_id, &mut self.rng) {
                    offered.push(c);
                }
            }
        }

        let request = SecureMsg::Request(Box::new(RequestBody {
            redeemed,
            fresh: fresh_out,
            offered,
            samples: Vec::new(),
            proofs: Vec::new(),
        }));
        if let RpcOutcome::Reply(SecureMsg::Accept(body)) = ctx.rpc(victim_addr, request) {
            let got_any = !body.transfers.is_empty();
            for t in body.transfers {
                self.harvest_or_store(t, cycle);
            }
            if self.tit_for_tat && got_any {
                for _ in 1..self.swap_len {
                    let clone = {
                        let mut party = self.party.lock().unwrap();
                        party.clone_for_victim(&self.id, &victim_id, &mut self.rng)
                    };
                    let Some(out) = clone else { break };
                    match ctx.rpc(
                        victim_addr,
                        SecureMsg::Round(Box::new(RoundBody { transfer: out })),
                    ) {
                        RpcOutcome::Reply(SecureMsg::RoundReply(r)) => match r.transfer {
                            Some(d) => self.harvest_or_store(d, cycle),
                            None => break,
                        },
                        _ => break,
                    }
                }
            }
        }
    }

    /// Post-attack, received descriptors become party property: honest
    /// ones are stored as redemption certificates.
    fn harvest_or_store(&mut self, d: SecureDescriptor, cycle: u64) {
        if d.owner() != self.id || d.is_redeemed() {
            return;
        }
        if self.attacking(cycle) && matches!(self.attack, SecureAttack::Hub) {
            self.party.lock().unwrap().harvest_token(d);
        } else {
            self.store_owned(d);
        }
    }

    // ------------------------------------------------------------------
    // Passive side
    // ------------------------------------------------------------------

    /// The RPC-server logic, reusable by wrapper enums.
    pub fn on_rpc_any(
        &mut self,
        from: Addr,
        msg: SecureMsg,
        ctx: &mut NodeCtx<'_, SecureMsg>,
    ) -> Option<SecureMsg> {
        let cycle = ctx.cycle();
        let now = ctx.now();
        match msg {
            SecureMsg::Request(body) => self.answer_request(from, *body, cycle, now),
            SecureMsg::Round(body) => self.answer_round(from, *body, cycle, now),
            _ => None,
        }
    }

    fn answer_request(
        &mut self,
        from: Addr,
        body: RequestBody,
        cycle: u64,
        now: u64,
    ) -> Option<SecureMsg> {
        // Malicious nodes validate nothing; they just harvest.
        let requester = body.fresh.creator();
        self.harvest_or_store(body.fresh, cycle);
        for d in body.offered {
            self.harvest_or_store(d, cycle);
        }

        if self.attacking(cycle) {
            match &self.attack {
                SecureAttack::Depletion => {
                    // "Transmitting an empty view in response" (§VI-C).
                    return Some(SecureMsg::Accept(Box::new(AcceptBody {
                        transfers: Vec::new(),
                        samples: Vec::new(),
                        proofs: Vec::new(),
                    })));
                }
                SecureAttack::Hub => {
                    let clone = {
                        let mut party = self.party.lock().unwrap();
                        party.clone_for_victim(&self.id, &requester, &mut self.rng)
                    };
                    let transfers: Vec<_> = if self.tit_for_tat {
                        clone.into_iter().collect()
                    } else {
                        let mut party = self.party.lock().unwrap();
                        let mut v: Vec<_> = clone.into_iter().collect();
                        for _ in 1..self.swap_len {
                            if let Some(c) =
                                party.clone_for_victim(&self.id, &requester, &mut self.rng)
                            {
                                v.push(c);
                            }
                        }
                        v
                    };
                    if self.tit_for_tat && self.swap_len > 1 {
                        self.sessions.insert(
                            from,
                            MalSession {
                                partner: requester,
                                remaining: self.swap_len - 1,
                            },
                        );
                    }
                    return Some(SecureMsg::Accept(Box::new(AcceptBody {
                        transfers,
                        samples: Vec::new(),
                        proofs: Vec::new(),
                    })));
                }
                _ => {}
            }
        }

        // Correct-looking response.
        let immediate = if self.tit_for_tat { 1 } else { self.swap_len };
        let mut transfers = Vec::new();
        for _ in 0..immediate {
            if let Some(t) = self.next_transfer(requester, cycle, now) {
                transfers.push(t);
            }
        }
        if self.tit_for_tat && self.swap_len > 1 && !transfers.is_empty() {
            self.sessions.insert(
                from,
                MalSession {
                    partner: requester,
                    remaining: self.swap_len - 1,
                },
            );
        }
        Some(SecureMsg::Accept(Box::new(AcceptBody {
            transfers,
            samples: self.samples(cycle),
            proofs: Vec::new(),
        })))
    }

    fn answer_round(
        &mut self,
        from: Addr,
        body: RoundBody,
        cycle: u64,
        now: u64,
    ) -> Option<SecureMsg> {
        let partner = {
            let s = self.sessions.get_mut(&from)?;
            if s.remaining == 0 {
                return None;
            }
            s.remaining -= 1;
            s.partner
        };
        self.harvest_or_store(body.transfer, cycle);
        let transfer = if self.attacking(cycle) && matches!(self.attack, SecureAttack::Hub) {
            let mut party = self.party.lock().unwrap();
            party.clone_for_victim(&self.id, &partner, &mut self.rng)
        } else {
            self.next_transfer(partner, cycle, now)
        };
        Some(SecureMsg::RoundReply(Box::new(RoundReplyBody { transfer })))
    }
}

impl SimNode for MaliciousSecureNode {
    type Msg = SecureMsg;

    fn on_cycle(&mut self, ctx: &mut CycleCtx<'_, Self>) {
        self.on_cycle_any(ctx);
    }

    fn on_rpc(
        &mut self,
        from: Addr,
        msg: Self::Msg,
        ctx: &mut NodeCtx<'_, Self::Msg>,
    ) -> Option<Self::Msg> {
        self.on_rpc_any(from, msg, ctx)
    }

    fn on_oneway(&mut self, _from: Addr, _msg: Self::Msg, _ctx: &mut NodeCtx<'_, Self::Msg>) {
        // Malicious nodes ignore and never relay proofs.
    }
}
