//! The hub attack against **legacy** Cyclon (paper §II-B, Figure 3).
//!
//! **Legacy harness.** This module bundles its own tiny network builder
//! ([`build_legacy_network`]) instead of the `sc-testkit` scenario
//! machinery: the unprotected baseline exists only to reproduce the
//! Figure 3 takeover and shares no protocol state with the SecureCyclon
//! stack. New adversarial scenarios should target SecureCyclon through
//! `sc_testkit` rather than extending this builder.
//!
//! Malicious nodes behave perfectly until an agreed start cycle, then keep
//! gossiping at the correct rate but present views consisting exclusively
//! of fabricated descriptors pointing at random members of their party.
//! Because legacy Cyclon trusts whatever a partner presents, every
//! exchange with a malicious node replaces up to `s` legitimate links with
//! malicious ones and destroys the legitimate descriptors handed over —
//! the takeover of Figure 3.

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, RngCore, SeedableRng};
use sc_crypto::{NodeId, PublicKey};
use sc_cyclon::{CyclonMsg, CyclonNode, LegacyDescriptor};
use sc_sim::{Addr, CycleCtx, NodeCtx, SimNode};
use std::sync::Arc;

/// Shared roster of the colluding party (paper §II-C: members "collude
/// with each other, have mutual knowledge about the network, share the
/// same pool of node descriptors").
#[derive(Debug)]
pub struct LegacyParty {
    /// All malicious members as (id, address).
    pub members: Vec<(NodeId, Addr)>,
    /// Addresses of every node in the network (mutual knowledge), used
    /// for uniformly random victim selection.
    pub all_addrs: Vec<Addr>,
}

/// A legacy-Cyclon hub attacker.
#[derive(Debug)]
pub struct LegacyHubAttacker {
    inner: CyclonNode,
    party: Arc<LegacyParty>,
    attack_start: u64,
    swap_len: usize,
    rng: SmallRng,
}

impl LegacyHubAttacker {
    /// Creates an attacker that behaves correctly (as `inner`) until
    /// `attack_start`, then floods `swap_len` malicious descriptors per
    /// exchange.
    pub fn new(
        inner: CyclonNode,
        party: Arc<LegacyParty>,
        attack_start: u64,
        swap_len: usize,
        rng_seed: [u8; 32],
    ) -> Self {
        assert!(swap_len > 0, "swap length must be positive");
        LegacyHubAttacker {
            inner,
            party,
            attack_start,
            swap_len,
            rng: SmallRng::from_seed(rng_seed),
        }
    }

    /// The attacker's node id.
    pub fn id(&self) -> NodeId {
        self.inner.id()
    }

    fn attacking(&self, cycle: u64) -> bool {
        cycle >= self.attack_start
    }

    /// Fabricates `k` fresh descriptors *routing* to random party members.
    ///
    /// Legacy Cyclon descriptors are unauthenticated, so the attacker mints
    /// a brand-new sybil ID per descriptor — defeating the victims'
    /// duplicate-ID filtering entirely — while the network address (the
    /// part that matters for control of traffic) belongs to the party.
    /// SecureCyclon closes exactly this hole: descriptors must be signed
    /// by their ID's key, and identity acquisition is assumed expensive
    /// (§II-A, Sybil resistance).
    fn fabricate(&mut self, k: usize) -> Vec<LegacyDescriptor> {
        let mut out = Vec::with_capacity(k);
        for _ in 0..k {
            let &(_, addr) = self
                .party
                .members
                .choose(&mut self.rng)
                .expect("party is never empty");
            let mut bytes = [0u8; 32];
            self.rng.fill_bytes(&mut bytes);
            bytes[0] = 2; // a well-formed (keyed-hash) identity tag
            let sybil = PublicKey::from_bytes(bytes).expect("tag 2 is valid");
            out.push(LegacyDescriptor::fresh(sybil, addr));
        }
        out
    }

    /// Active side, generic for wrapper enums.
    pub fn on_cycle_any<N: SimNode<Msg = CyclonMsg>>(&mut self, ctx: &mut CycleCtx<'_, N>) {
        if !self.attacking(ctx.cycle()) {
            return self.inner.on_cycle_any(ctx);
        }
        // Correct rate, correct-looking exchange — but the payload points
        // exclusively at the malicious party, and the victim is chosen
        // uniformly at random (§II-C).
        let victim = self.party.all_addrs[self.rng.gen_range(0..self.party.all_addrs.len())];
        let payload = self.fabricate(self.swap_len);
        // Whatever the victim returns is discarded: the attacker destroys
        // legitimate descriptors to starve the overlay.
        let _ = ctx.rpc(
            victim,
            CyclonMsg::Shuffle {
                descriptors: payload,
            },
        );
    }

    /// Passive side, reusable by wrapper enums.
    pub fn on_rpc_any(
        &mut self,
        from: Addr,
        msg: CyclonMsg,
        ctx: &mut NodeCtx<'_, CyclonMsg>,
    ) -> Option<CyclonMsg> {
        if !self.attacking(ctx.cycle()) {
            return self.inner.on_rpc_any(from, msg, ctx);
        }
        match msg {
            CyclonMsg::Shuffle { descriptors } => {
                // Swallow the victim's descriptors, answer with malicious
                // ones.
                drop(descriptors);
                Some(CyclonMsg::ShuffleResponse {
                    descriptors: self.fabricate(self.swap_len),
                })
            }
            CyclonMsg::ShuffleResponse { .. } => None,
        }
    }
}

impl SimNode for LegacyHubAttacker {
    type Msg = CyclonMsg;

    fn on_cycle(&mut self, ctx: &mut CycleCtx<'_, Self>) {
        self.on_cycle_any(ctx);
    }

    fn on_rpc(
        &mut self,
        from: Addr,
        msg: Self::Msg,
        ctx: &mut NodeCtx<'_, Self::Msg>,
    ) -> Option<Self::Msg> {
        self.on_rpc_any(from, msg, ctx)
    }

    fn on_oneway(&mut self, _from: Addr, _msg: Self::Msg, _ctx: &mut NodeCtx<'_, Self::Msg>) {}
}

/// A node in a mixed legacy network: honest or hub attacker.
#[derive(Debug)]
pub enum LegacyNet {
    /// A correct Cyclon node.
    Honest(Box<CyclonNode>),
    /// A colluding hub attacker.
    Malicious(Box<LegacyHubAttacker>),
}

impl LegacyNet {
    /// Whether this node is malicious.
    pub fn is_malicious(&self) -> bool {
        matches!(self, LegacyNet::Malicious(_))
    }

    /// The honest node's view, if honest.
    pub fn honest_view(&self) -> Option<&sc_cyclon::View> {
        match self {
            LegacyNet::Honest(n) => Some(n.view()),
            LegacyNet::Malicious(_) => None,
        }
    }
}

impl SimNode for LegacyNet {
    type Msg = CyclonMsg;

    fn on_cycle(&mut self, ctx: &mut CycleCtx<'_, Self>) {
        match self {
            LegacyNet::Honest(n) => n.on_cycle_any(ctx),
            LegacyNet::Malicious(n) => n.on_cycle_any(ctx),
        }
    }

    fn on_rpc(
        &mut self,
        from: Addr,
        msg: Self::Msg,
        ctx: &mut NodeCtx<'_, Self::Msg>,
    ) -> Option<Self::Msg> {
        match self {
            LegacyNet::Honest(n) => n.on_rpc_any(from, msg, ctx),
            LegacyNet::Malicious(n) => n.on_rpc_any(from, msg, ctx),
        }
    }

    fn on_oneway(&mut self, _from: Addr, _msg: Self::Msg, _ctx: &mut NodeCtx<'_, Self::Msg>) {}
}

/// Parameters for a mixed legacy-Cyclon network.
#[derive(Clone, Copy, Debug)]
pub struct LegacyNetParams {
    /// Total nodes.
    pub n: usize,
    /// Malicious nodes among them (addresses `0..n_malicious`).
    pub n_malicious: usize,
    /// Protocol configuration.
    pub cfg: sc_cyclon::CyclonConfig,
    /// Cycle at which the attack starts.
    pub attack_start: u64,
    /// Master seed.
    pub seed: u64,
}

/// Builds a ring-bootstrapped mixed legacy network. Returns the engine and
/// the set of malicious addresses (the hub attack is measured by where
/// links *route*, since sybil IDs defeat ID-based counting).
pub fn build_legacy_network(
    params: LegacyNetParams,
) -> (sc_sim::Engine<LegacyNet>, std::collections::HashSet<Addr>) {
    use sc_crypto::{Keypair, Scheme};
    let LegacyNetParams {
        n,
        n_malicious,
        cfg,
        attack_start,
        seed,
    } = params;
    assert!(n_malicious < n, "need at least one honest node");
    let keypairs: Vec<Keypair> = (0..n)
        .map(|i| {
            Keypair::from_seed(
                Scheme::KeyedHash,
                sc_sim::rng::derive_seed(seed, "identity", i as u64),
            )
        })
        .collect();
    let members: Vec<(NodeId, Addr)> = (0..n_malicious)
        .map(|i| (keypairs[i].public(), i as Addr))
        .collect();
    let party = Arc::new(LegacyParty {
        members,
        all_addrs: (0..n as Addr).collect(),
    });
    let mut engine = sc_sim::Engine::new(sc_sim::SimConfig::seeded(seed));
    for (i, kp) in keypairs.iter().enumerate() {
        let mut inner = CyclonNode::new(
            kp.public(),
            i as Addr,
            cfg,
            sc_sim::rng::derive_seed(seed, "node", i as u64),
        );
        let boots: Vec<(NodeId, Addr)> = (1..=4)
            .map(|k| {
                let j = (i + k) % n;
                (keypairs[j].public(), j as Addr)
            })
            .collect();
        inner.bootstrap(boots);
        let node = if i < n_malicious {
            LegacyNet::Malicious(Box::new(LegacyHubAttacker::new(
                inner,
                Arc::clone(&party),
                attack_start,
                cfg.swap_len,
                sc_sim::rng::derive_seed(seed, "attacker", i as u64),
            )))
        } else {
            LegacyNet::Honest(Box::new(inner))
        };
        engine.spawn_with(|_| node);
    }
    (engine, (0..n_malicious as Addr).collect())
}

/// Fraction of honest links routing to malicious addresses (the y-axis of
/// Figure 3).
pub fn legacy_malicious_link_fraction(
    engine: &sc_sim::Engine<LegacyNet>,
    malicious_addrs: &std::collections::HashSet<Addr>,
) -> f64 {
    let mut mal = 0usize;
    let mut total = 0usize;
    for (_, node) in engine.nodes() {
        let Some(view) = node.honest_view() else {
            continue;
        };
        for d in view.iter() {
            total += 1;
            if malicious_addrs.contains(&d.addr) {
                mal += 1;
            }
        }
    }
    if total == 0 {
        0.0
    } else {
        mal as f64 / total as f64
    }
}
