//! # sc-attacks — the adversary suite of the SecureCyclon evaluation
//!
//! Implements every attack the paper (ICDCS 2023) evaluates, against both
//! the legacy Cyclon baseline and SecureCyclon itself:
//!
//! * [`hub_legacy`] — **legacy harness**: the hub attack on unprotected
//!   Cyclon (Figure 3), where a handful of colluding nodes take over 100%
//!   of the overlay's links. This module keeps its own self-contained
//!   network builder because the unprotected baseline shares no state
//!   with the SecureCyclon stack; everything SecureCyclon-related runs
//!   through `sc-testkit` instead.
//! * [`party`] — the colluding party's shared state: member keypairs
//!   (forge-on-demand), the descriptor pool, and harvested victim tokens.
//! * [`malicious`] — the malicious SecureCyclon participant with the
//!   paper's attack strategies: hub (Figure 5), link-depletion
//!   (Figure 6), age-targeted cloning (Figure 7), and frequency
//!   violations.
//!
//! The mixed honest/malicious network builder and the figure metrics
//! formerly in this crate's `net` module now live in `sc_testkit::net`,
//! where they share one engine path with fault scenarios and invariant
//! oracles — this crate contains only the adversaries themselves.
//!
//! The adversary model follows §II-C: members collude, share all keys and
//! descriptors, choose victims uniformly at random, and do not run any of
//! the protocol's defensive checks.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod hub_legacy;
pub mod malicious;
pub mod party;

pub use hub_legacy::{
    build_legacy_network, legacy_malicious_link_fraction, LegacyHubAttacker, LegacyNet,
    LegacyNetParams, LegacyParty,
};
pub use malicious::{CloneEvent, CloneLedger, MaliciousSecureNode, SecureAttack};
pub use party::SecureParty;
