//! # sc-attacks — the adversary suite of the SecureCyclon evaluation
//!
//! Implements every attack the paper (ICDCS 2023) evaluates, against both
//! the legacy Cyclon baseline and SecureCyclon itself:
//!
//! * [`hub_legacy`] — the hub attack on unprotected Cyclon (Figure 3):
//!   a handful of colluding nodes take over 100% of the overlay's links.
//! * [`party`] — the colluding party's shared state: member keypairs
//!   (forge-on-demand), the descriptor pool, and harvested victim tokens.
//! * [`malicious`] — the malicious SecureCyclon participant with the
//!   paper's attack strategies: hub (Figure 5), link-depletion
//!   (Figure 6), age-targeted cloning (Figure 7), and frequency
//!   violations.
//! * [`net`] — mixed honest/malicious network builder plus the metrics
//!   behind each figure's y-axis (malicious-link %, non-swappable-link %,
//!   blacklist coverage, eclipsed fraction).
//!
//! The adversary model follows §II-C: members collude, share all keys and
//! descriptors, choose victims uniformly at random, and do not run any of
//! the protocol's defensive checks.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod hub_legacy;
pub mod malicious;
pub mod net;
pub mod party;

pub use hub_legacy::{
    build_legacy_network, legacy_malicious_link_fraction, LegacyHubAttacker, LegacyNet,
    LegacyNetParams, LegacyParty,
};
pub use malicious::{CloneEvent, CloneLedger, MaliciousSecureNode, SecureAttack};
pub use net::{
    blacklist_coverage, build_secure_network, eclipsed_fraction, malicious_link_fraction,
    ns_link_fraction, proofs_generated, SecureNet, SecureNetParams, SecureNetwork,
};
pub use party::SecureParty;
